"""LSH Ensemble — the paper's primary contribution (Section 5).

The index partitions domains by cardinality and keeps one dynamic LSH
(:class:`~repro.forest.prefix_forest.PrefixForest`) per partition.  A
containment query ``(Q, t*)`` is answered per partition (Algorithm 1):

1. estimate the query size ``q`` from its signature (``approx(|Q|)``);
2. convert ``t*`` to that partition's conservative Jaccard threshold using
   the partition's size upper bound ``u_i`` (Eq. 7) — realised here by
   tuning ``(b_i, r_i)`` directly against the containment-space objective
   (Eq. 26);
3. query the partition's forest at ``(b_i, r_i)``;

and the union of the partition results is returned
(``Partitioned-Containment-Search``).  Partitions whose largest possible
containment ``u_i / q`` is below ``t*`` cannot hold a true positive and
are pruned outright.

Dynamic lifecycle (two-tier LSM-style mutation path)
----------------------------------------------------

The partitioning above is computed once at build time, but live corpora
drift (Section 6.2).  Post-build writes therefore never touch the
immutable **base tier**: ``insert`` stages entries into a small
self-partitioned **delta tier** (:class:`~repro.core.delta.DeltaTier`)
and ``remove`` of a base-tier key adds a **tombstone**.  Every query
entry point answers from both tiers, filtering tombstones out of the
base results.  A **drift monitor** (:meth:`LSHEnsemble.drift_stats`)
tracks partition-depth imbalance, write churn and size-distribution
skewness shift; when drift warrants it — manually, or automatically via
``auto_rebalance_at`` — :meth:`LSHEnsemble.rebalance` folds both tiers
into a freshly partitioned base through the vectorised bulk-build path.

Concurrency and the mutation epoch
----------------------------------

All public mutators and query entry points serialise on one reentrant
lock, so threads may freely race ``insert``/``remove``/``rebalance``
against ``query``/``query_batch``: a query never observes a
half-swapped base tier or a cleared-but-unreplaced tombstone set.
Queries are writers too (the first probe after a write flushes the
delta tier; removals dirty the lazily recomputed tuning bounds), which
is why a plain exclusive lock — not a reader-writer split — is the
honest choice; the serving layer regains cross-request throughput by
coalescing concurrent requests into single ``query_batch`` calls
rather than by running queries concurrently.
Every logical mutation also bumps a monotonic
:attr:`LSHEnsemble.mutation_epoch` (``generation`` only moves on
rebalance), giving layered caches — e.g. the HTTP serving tier in
:mod:`repro.serve` — an exact invalidation key.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from repro.core.delta import DeltaTier
from repro.core.partitioner import (
    Partition,
    assign_partition,
    equi_depth_partitions,
    partition_depth_cv,
)
from repro.core.tuning import (
    TuningResult,
    ratio_buckets,
    tune_params_quantized,
)
from repro.forest.prefix_forest import PrefixForest, default_forest_shape
from repro.kernels import get_kernel, validate_bbit
from repro.lsh.storage import DictHashTableStorage
from repro.minhash.batch import SignatureBatch
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash
from repro.stats.skewness import skewness_from_sums

__all__ = ["LSHEnsemble", "PartitionQueryReport"]

# The top-k search's descending threshold ladder: probe at START, step
# down by STEP until k candidates accumulate (or min_threshold).
# Shared with the sharded fan-out (repro.parallel.sharded), whose
# bit-exact parity with the flat index depends on walking the very same
# rungs.
TOPK_LADDER_START = 0.95
TOPK_LADDER_STEP = 0.15


def _validate_topk_args(k: int, min_threshold: float) -> None:
    if k < 1:
        raise ValueError("k must be >= 1")
    if not 0.0 < min_threshold <= 1.0:
        raise ValueError("min_threshold must be in (0, 1]")


def _ladder_candidates(query_at, k: int, min_threshold: float) -> set:
    """Candidates accumulated down the shared top-k threshold ladder.

    ``query_at(threshold) -> set``.  Rungs descend from
    ``TOPK_LADDER_START`` by ``TOPK_LADDER_STEP`` until ``k``
    candidates accumulate or the ``min_threshold`` floor rung has been
    probed.  The flat and sharded searches both walk this exact ladder
    — their bit-exact parity (pinned by tests) is structural, not a
    matter of keeping two copies in sync.
    """
    candidates: set = set()
    threshold = TOPK_LADDER_START
    while True:
        candidates |= query_at(threshold)
        if len(candidates) >= k or threshold <= min_threshold:
            break
        threshold = max(min_threshold, threshold - TOPK_LADDER_STEP)
    return candidates


def _ladder_candidates_batch(query_rows_at, n: int, k: int,
                             min_threshold: float) -> list[set]:
    """Per-row ladder candidates; each rung answers only the rows that
    still need candidates.

    ``query_rows_at(rows, threshold) -> list[set]`` aligned with
    ``rows``.  Row ``j`` stops descending once it holds ``k``
    candidates (the same stop rule as :func:`_ladder_candidates`), so
    the expensive early rungs are shared by the whole batch.
    """
    candidates: list[set] = [set() for _ in range(n)]
    active = list(range(n))
    threshold = TOPK_LADDER_START
    while active:
        found = query_rows_at(active, threshold)
        still_active = []
        for j, hits in zip(active, found):
            candidates[j] |= hits
            if len(candidates[j]) < k and threshold > min_threshold:
                still_active.append(j)
        active = still_active
        threshold = max(min_threshold, threshold - TOPK_LADDER_STEP)
    return candidates


class PartitionQueryReport:
    """Diagnostics for one partition's contribution to a query.

    ``elapsed_seconds`` is the wall time of this partition's probe.  The
    paper evaluates partitions concurrently (Eq. 9 minimises the *max*
    per-partition cost for exactly that reason), so the parallel-model
    query time of a whole ensemble query is ``max`` over these, while the
    single-worker time is their sum.

    ``tier`` names the tier the partition belongs to: ``"base"`` for the
    immutable built index, ``"delta"`` for the write tier's
    self-partitioned side index.
    """

    __slots__ = ("partition", "tuning", "num_candidates", "pruned",
                 "elapsed_seconds", "tier")

    def __init__(self, partition: Partition, tuning: TuningResult | None,
                 num_candidates: int, pruned: bool,
                 elapsed_seconds: float = 0.0, tier: str = "base") -> None:
        self.partition = partition
        self.tuning = tuning
        self.num_candidates = num_candidates
        self.pruned = pruned
        self.elapsed_seconds = elapsed_seconds
        self.tier = tier

    def __repr__(self) -> str:
        suffix = "" if self.tier == "base" else ", tier=%s" % self.tier
        if self.pruned:
            return "PartitionQueryReport([%d, %d), pruned%s)" % (
                self.partition.lower, self.partition.upper, suffix)
        return ("PartitionQueryReport([%d, %d), b=%d, r=%d, candidates=%d%s)"
                % (self.partition.lower, self.partition.upper,
                   self.tuning.b, self.tuning.r, self.num_candidates,
                   suffix))


def _as_lean(signature: MinHash | LeanMinHash) -> LeanMinHash:
    if isinstance(signature, LeanMinHash):
        return signature
    if isinstance(signature, MinHash):
        return LeanMinHash(signature)
    raise TypeError(
        "expected MinHash or LeanMinHash, got %r" % type(signature).__name__
    )


def _as_batch(batch) -> SignatureBatch:
    if isinstance(batch, SignatureBatch):
        return batch
    if isinstance(batch, np.ndarray):
        return SignatureBatch(None, batch)
    return SignatureBatch.from_signatures(list(batch))


class LSHEnsemble:
    """Containment-search index over domains with skewed cardinalities.

    Parameters
    ----------
    threshold:
        Default containment threshold ``t*``; can be overridden per query.
    num_perm:
        Signature length ``m`` (paper default 256).
    num_partitions:
        Number of cardinality partitions ``n`` (paper evaluates 8/16/32).
    num_trees, max_depth:
        Per-partition forest shape ``(B, K)``; defaults to the balanced
        shape for ``num_perm`` (32 trees of depth 8 at ``m = 256``).
    partitioner:
        Callable ``(sizes, n) -> list[Partition]`` used by :meth:`index`;
        defaults to equi-depth (Theorem 2).  Pass
        :func:`~repro.core.partitioner.optimal_partitions` for non-power-law
        data, or a custom callable.
    storage_factory:
        Bucket backend for the underlying forests.
    kernel:
        Hot-loop backend name or :class:`~repro.kernels.Kernel`
        instance for every forest of the ensemble (band hashing,
        probing, candidate merge — see :mod:`repro.kernels`).  Defaults
        to the process selection (``REPRO_KERNEL`` env, then ``numpy``)
        and is recorded in snapshot headers so loaded indexes and pool
        workers adopt the builder's choice.
    bbit:
        b-bit band-key packing (None / 8 / 16) applied to every
        forest; persisted in snapshot headers.  Packed keys cut probe
        memory bandwidth 8x/4x and can only *add* candidates (recall
        never drops).
    auto_rebalance_at:
        Optional drift-score threshold in ``(0, 1]``.  When set, every
        :meth:`insert` / :meth:`remove` checks the (O(partitions)) drift
        score and triggers :meth:`rebalance` once it reaches the
        threshold.  ``None`` (default) leaves compaction fully manual.

    The index is built in one shot with :meth:`index` (partition bounds
    are derived from the data, as in the paper).  After the build the
    base tier is immutable: :meth:`insert` stages new domains in the
    self-partitioned delta tier and :meth:`remove` tombstones base-tier
    keys, until :meth:`rebalance` folds everything into a freshly
    partitioned base (see the module docstring).
    """

    def __init__(self, threshold: float = 0.8, num_perm: int = 256,
                 num_partitions: int = 8,
                 num_trees: int | None = None, max_depth: int | None = None,
                 partitioner=equi_depth_partitions,
                 storage_factory=DictHashTableStorage,
                 kernel=None, bbit=None,
                 auto_rebalance_at: float | None = None) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if num_perm < 2:
            raise ValueError("num_perm must be at least 2")
        if auto_rebalance_at is not None:
            auto_rebalance_at = float(auto_rebalance_at)
            if not 0.0 < auto_rebalance_at <= 1.0:
                raise ValueError("auto_rebalance_at must be in (0, 1]")
        self.auto_rebalance_at = auto_rebalance_at
        self.threshold = float(threshold)
        self.num_perm = int(num_perm)
        self.num_partitions = int(num_partitions)
        if num_trees is None or max_depth is None:
            auto_trees, auto_depth = default_forest_shape(num_perm)
            num_trees = num_trees if num_trees is not None else auto_trees
            max_depth = max_depth if max_depth is not None else auto_depth
        if num_trees * max_depth > num_perm:
            raise ValueError(
                "num_trees * max_depth = %d exceeds num_perm = %d"
                % (num_trees * max_depth, num_perm)
            )
        self.num_trees = int(num_trees)
        self.max_depth = int(max_depth)
        self._partitioner = partitioner
        self._storage_factory = storage_factory
        self._kernel = get_kernel(kernel)
        self.bbit = validate_bbit(bbit)
        self._partitions: list[Partition] = []
        self._forests: list[PrefixForest] = []
        # Keys *physically* present in the base-tier forests, including
        # tombstoned ones (the base tier is immutable after the build;
        # removal is logical).  The live key set is
        # (base - tombstones) | delta.
        self._sizes: dict[Hashable, int] = {}
        # Largest *live* true size routed into each partition.  Sizes
        # clamped at build time (explicit partitions narrower than the
        # data) can exceed the partition's nominal upper bound; queries
        # must use the larger of the two or pruning/tuning would lose
        # those domains.  Tombstoning a partition's maximal key marks
        # this dirty; it is recomputed lazily (_resolve_live_max_locked) so the
        # tuning bound u never stays inflated by removed domains.
        self._partition_max_size: list[int] = []
        self._live_max_dirty = False
        # Dynamic tiers.
        self._delta: DeltaTier | None = None
        self._tombstones: set = set()
        self._generation = 0
        # Monotonic count of *logical* mutations (insert/remove/
        # rebalance).  Unlike ``generation`` — which only bumps on
        # rebalance — every content change bumps it, which is what lets
        # a serving layer key result caches on it.  Bumped strictly
        # after the mutation's state changes, under the same lock that
        # serialises queries, so a query observing epoch E always sees
        # exactly the contents of epoch E.
        self._mutation_epoch = 0
        # Serialises mutations against the query paths.  Queries are not
        # pure reads (the first query after a write flushes the delta
        # tier, and removals dirty the lazily recomputed tuning bounds),
        # and rebalance() swaps out every base structure; the reentrant
        # lock makes insert/remove/rebalance safe to race against
        # query/query_batch from other threads.
        self._lock = threading.RLock()
        # Drift monitor state: per-base-partition live counts (base-tier
        # live keys, and delta keys routed by the *base* partitions), and
        # exact integer power sums (n, Σx, Σx², Σx³) of the live size
        # distribution for O(1) incremental skewness.
        self._base_live_counts: list[int] = []
        self._delta_routed_counts: list[int] = []
        self._moments: list[int] = [0, 0, 0, 0]
        self._baseline_depth_cv = 0.0
        self._baseline_skew = 0.0
        # Set by the persistence layer when this index was restored from
        # a manifest segment; lets a re-save into the same directory
        # reuse the unchanged base segment.  rebalance() clears it.
        self._base_source = None

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def index(self, entries: Iterable[tuple[Hashable, MinHash | LeanMinHash,
                                            int]],
              partitions: Sequence[Partition] | None = None) -> None:
        """Bulk-build the index from ``(key, signature, size)`` triples.

        Partition bounds come from the configured partitioner applied to
        the observed sizes, unless explicit ``partitions`` are supplied
        (used by the Figure 8 sweep to impose blended partitionings).
        """
        staged = list(entries)
        if not staged:
            raise ValueError("cannot index an empty collection of domains")
        sizes = [int(size) for _, __, size in staged]
        if min(sizes) < 1:
            raise ValueError("all domain sizes must be >= 1")
        # One (n, m) matrix for the whole build: routing, partition
        # grouping, and bucket-key packing all become numpy passes
        # instead of n Python round trips through insert().
        matrix = np.empty((len(staged), self.num_perm), dtype=np.uint64)
        seeds = np.empty(len(staged), dtype=np.int64)
        for i, (_, signature, __) in enumerate(staged):
            if not isinstance(signature, (MinHash, LeanMinHash)):
                raise TypeError(
                    "expected MinHash or LeanMinHash, got %r"
                    % type(signature).__name__
                )
            if signature.num_perm != self.num_perm:
                raise ValueError(
                    "signature num_perm %d does not match forest num_perm %d"
                    % (signature.num_perm, self.num_perm)
                )
            matrix[i] = signature.hashvalues
            seeds[i] = signature.seed
        # Building swaps in the base structures the query paths walk,
        # so it serialises on the same lock as every other mutator.
        with self._lock:
            if self._forests:
                raise RuntimeError(
                    "index() may only be called on an empty index")
            if partitions is not None:
                self._partitions = list(partitions)
            else:
                self._partitions = self._partitioner(
                    sizes, self.num_partitions)
            keys = [key for key, __, ___ in staged]
            if len(set(keys)) != len(keys):
                seen: set = set()
                for key in keys:
                    if key in seen:
                        raise ValueError(
                            "key %r is already in the index" % (key,))
                    seen.add(key)
            self._forests = [
                PrefixForest(self.num_perm, self.num_trees, self.max_depth,
                             storage_factory=self._storage_factory,
                             kernel=self._kernel, bbit=self.bbit)
                for _ in self._partitions
            ]
            self._partition_max_size = [0] * len(self._partitions)
            self._bulk_fill_locked(keys, sizes, matrix, seeds)
            # A fresh build is served immediately: pay the bucket fill
            # now (still one vectorised pass per depth) rather than on
            # the first queries.  Loaded snapshots stay lazy — see
            # _restore_columnar_locked.
            self.materialize()

    def materialize(self) -> None:
        """Fill any lazily pending bucket tables in every partition.

        After :func:`~repro.persistence.load_ensemble`, bucket tables
        materialise per depth as queries first reach them; call this to
        warm the whole index up front instead (e.g. before putting a
        replica into rotation).
        """
        for forest in self._forests:
            forest.materialize()
        if self._delta is not None:
            self._delta.materialize()

    def _assign_partitions(self, clamped: np.ndarray) -> np.ndarray:
        """Partition index per (already clamped) size, vectorised."""
        parts = self._partitions
        contiguous = all(parts[i].upper == parts[i + 1].lower
                         for i in range(len(parts) - 1))
        if contiguous:
            bounds = np.fromiter(
                (p.lower for p in parts), dtype=np.int64, count=len(parts))
            bounds = np.concatenate([bounds, [parts[-1].upper]])
            return np.searchsorted(bounds, clamped, side="right") - 1
        # Caller-supplied partitions with gaps: fall back to the exact
        # per-size scan (raises for sizes no partition covers, exactly
        # like the single-entry path).
        return np.fromiter(
            (assign_partition(int(c), parts) for c in clamped),
            dtype=np.intp, count=len(clamped))

    def _bulk_fill_locked(self, keys: list, sizes: list[int], matrix: np.ndarray,
                   seeds: np.ndarray, initial: bool = True) -> None:
        """Group rows by partition and bulk-insert each group's block.

        ``initial=True`` (a build/restore/rebalance) seeds the drift
        monitor from this fill; ``initial=False`` (the delta tier's
        vectorised top-up flush) adds the rows to existing forests and
        folds them into the monitor incrementally.  Callers own key
        deduplication against the existing contents.
        """
        parts = self._partitions
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        clamped = np.clip(sizes_arr, parts[0].lower, parts[-1].upper - 1)
        idx = self._assign_partitions(clamped)
        order = np.argsort(idx, kind="stable")
        order_list = order.tolist()
        ordered = matrix[order]
        ordered.setflags(write=False)
        keys_o = [keys[j] for j in order_list]
        sizes_o = sizes_arr[order]
        seeds_o = seeds[order]
        # Signatures of one build usually share a seed; collapsing to a
        # scalar skips a per-row int() in the forest wrap loop.
        shared_seed = (int(seeds_o[0])
                       if bool((seeds_o == seeds_o[0]).all()) else None)
        counts = np.bincount(idx, minlength=len(parts)).tolist()
        off = 0
        for i, count in enumerate(counts):
            if count:
                block_seeds = (shared_seed if shared_seed is not None
                               else seeds_o[off:off + count])
                self._forests[i].insert_batch(
                    keys_o[off:off + count], ordered[off:off + count],
                    block_seeds)
                peak = int(sizes_o[off:off + count].max())
                if peak > self._partition_max_size[i]:
                    self._partition_max_size[i] = peak
            off += count
        self._sizes.update(zip(keys, sizes))
        if initial:
            self._init_drift_state(counts, sizes)
        else:
            for i, count in enumerate(counts):
                self._base_live_counts[i] += int(count)
            added = self._moments_of(sizes)
            self._moments = [have + new for have, new
                             in zip(self._moments, added)]
            self._base_source = None

    def _init_drift_state(self, counts: list[int],
                          sizes: Iterable[int]) -> None:
        """Seed the drift monitor from a freshly filled base tier."""
        self._base_live_counts = [int(c) for c in counts]
        self._delta_routed_counts = [0] * len(self._partitions)
        self._moments = self._moments_of(sizes)
        self._baseline_depth_cv = partition_depth_cv(self._base_live_counts)
        self._baseline_skew = skewness_from_sums(*self._moments)

    @staticmethod
    def _moments_of(sizes: Iterable[int]) -> list[int]:
        """Exact integer power sums (n, Σx, Σx², Σx³) of ``sizes``."""
        n = s1 = s2 = s3 = 0
        for s in sizes:
            s = int(s)
            sq = s * s
            n += 1
            s1 += s
            s2 += sq
            s3 += sq * s
        return [n, s1, s2, s3]

    def _track_size(self, size: int, sign: int) -> None:
        """Add (+1) or drop (-1) one live size from the moment sums."""
        s = int(size)
        sq = s * s
        m = self._moments
        m[0] += sign
        m[1] += sign * s
        m[2] += sign * sq
        m[3] += sign * sq * s

    def _restore_columnar_locked(self, partitions: Sequence[Partition], keys: list,
                          sizes: list[int], matrix: np.ndarray,
                          seeds, partition_rows: Sequence[int],
                          partition_max_size: Sequence[int]) -> None:
        """Rebuild from a columnar snapshot (persistence format v2).

        ``matrix`` rows must already be ordered partition-major with
        ``partition_rows[i]`` rows per partition, so every partition's
        block is a contiguous zero-copy slice (possibly of a memmap).
        ``partition_max_size`` is restored verbatim — it can exceed what
        the stored sizes imply when the saved index had its largest
        domains removed, and queries must stay conservative about that.
        """
        if self._forests:
            raise RuntimeError(
                "restore requires an empty index; this one is built")
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys in snapshot")
        self._partitions = list(partitions)
        self._forests = [
            PrefixForest(self.num_perm, self.num_trees, self.max_depth,
                         storage_factory=self._storage_factory,
                         kernel=self._kernel, bbit=self.bbit)
            for _ in self._partitions
        ]
        self._partition_max_size = [int(m) for m in partition_max_size]
        scalar_seeds = np.ndim(seeds) == 0
        off = 0
        for i, count in enumerate(partition_rows):
            count = int(count)
            if count:
                self._forests[i].insert_batch(
                    keys[off:off + count], matrix[off:off + count],
                    seeds if scalar_seeds else seeds[off:off + count])
            off += count
        sizes = [int(s) for s in sizes]
        self._sizes.update(zip(keys, sizes))
        self._init_drift_state(list(partition_rows), sizes)

    def insert(self, key: Hashable, signature: MinHash | LeanMinHash,
               size: int) -> None:
        """Add one domain to an already-built index.

        The base tier is immutable: the entry is staged in the delta
        tier (O(1) — no bucket work until the next query flushes it),
        where it gets partitions fitted to the delta's own size
        distribution instead of clamping into the base tier's stale
        boundary partitions.  :meth:`rebalance` later folds the delta
        into a freshly partitioned base.
        """
        if not self._forests:
            raise RuntimeError("call index() before insert()")
        if size < 1:
            raise ValueError("domain size must be >= 1")
        lean = _as_lean(signature)
        if lean.num_perm != self.num_perm:
            raise ValueError(
                "signature num_perm %d does not match index num_perm %d"
                % (lean.num_perm, self.num_perm)
            )
        with self._lock:
            if key in self:
                raise ValueError("key %r is already in the index" % (key,))
            size = int(size)
            if self._delta is None:
                self._delta = DeltaTier(self._delta_factory)
            self._delta.add(key, lean, size)
            self._delta_routed_counts[self._route_index(size)] += 1
            self._track_size(size, +1)
            self._mutation_epoch += 1
            self._maybe_auto_rebalance_locked()

    def _delta_factory(self) -> "LSHEnsemble":
        """An empty delta-tier inner index bound to this configuration.

        The delta stays small between rebalances, so it gets at most 4
        partitions — enough self-partitioning to keep drifted sizes out
        of degenerate clamping, cheap enough to rebuild on flush.
        """
        return LSHEnsemble(
            threshold=self.threshold, num_perm=self.num_perm,
            num_partitions=min(4, self.num_partitions),
            num_trees=self.num_trees, max_depth=self.max_depth,
            partitioner=self._partitioner,
            storage_factory=self._storage_factory,
            kernel=self._kernel, bbit=self.bbit)

    def _route_index(self, size: int) -> int:
        """Base partition index for ``size`` (clamped into range)."""
        clamped = min(max(size, self._partitions[0].lower),
                      self._partitions[-1].upper - 1)
        return assign_partition(clamped, self._partitions)

    def _route_locked(self, key: Hashable, signature: MinHash | LeanMinHash,
               size: int) -> None:
        """Physically insert into the base-tier forests (build-time
        routing; used by the delta tier's inner index, never by public
        :meth:`insert`)."""
        if key in self._sizes:
            raise ValueError("key %r is already in the index" % (key,))
        i = self._route_index(size)
        self._forests[i].insert(key, _as_lean(signature))
        self._sizes[key] = size
        if size > self._partition_max_size[i]:
            self._partition_max_size[i] = size
        self._base_live_counts[i] += 1
        self._track_size(size, +1)
        self._base_source = None

    def _remove_physical_locked(self, key: Hashable) -> None:
        """Physically remove from the base-tier forests (delta inner
        index only — the public :meth:`remove` tombstones instead)."""
        size = self._sizes.pop(key, None)
        if size is None:
            raise KeyError(key)
        i = self._route_index(size)
        self._forests[i].remove(key)
        self._base_live_counts[i] -= 1
        self._track_size(size, -1)
        if size >= self._partition_max_size[i]:
            # The partition's maximal key may be gone: recompute the
            # tuning bound lazily instead of serving an inflated u.
            self._live_max_dirty = True
        self._base_source = None

    def remove(self, key: Hashable) -> None:
        """Remove a domain from the index.

        Delta-tier entries are dropped outright; base-tier keys get a
        tombstone (the columnar base stays untouched — crucially, this
        no longer forces lazily loaded bucket tables to materialise).
        Tombstoned keys are filtered out of every query and reclaimed by
        :meth:`rebalance`.
        """
        with self._lock:
            if self._delta is not None and key in self._delta:
                size = self._delta.discard(key)
                self._delta_routed_counts[self._route_index(size)] -= 1
                self._track_size(size, -1)
            elif key in self._sizes and key not in self._tombstones:
                size = self._sizes[key]
                self._tombstones.add(key)
                i = self._route_index(size)
                self._base_live_counts[i] -= 1
                self._track_size(size, -1)
                if size >= self._partition_max_size[i]:
                    self._live_max_dirty = True
            else:
                raise KeyError(key)
            self._mutation_epoch += 1
            self._maybe_auto_rebalance_locked()

    def _resolve_live_max_locked(self) -> None:
        """Recompute per-partition live maxima if removals dirtied them.

        ``remove()`` of a partition's maximal key would otherwise leave
        the old maximum as the tuning bound ``u`` forever, inflating
        every subsequent (b, r) selection for that partition.  One
        vectorised pass over the live base keys restores the exact
        bound; delta entries carry their own partitions and do not
        participate.
        """
        if not self._live_max_dirty:
            return
        live_max = [0] * len(self._partitions)
        if self._sizes:
            keys = list(self._sizes)
            sizes = np.fromiter((self._sizes[k] for k in keys),
                                dtype=np.int64, count=len(keys))
            if self._tombstones:
                tombstones = self._tombstones
                mask = np.fromiter((k not in tombstones for k in keys),
                                   dtype=bool, count=len(keys))
                sizes = sizes[mask]
            if sizes.size:
                parts = self._partitions
                clamped = np.clip(sizes, parts[0].lower,
                                  parts[-1].upper - 1)
                idx = self._assign_partitions(clamped)
                peaks = np.zeros(len(parts), dtype=np.int64)
                np.maximum.at(peaks, idx, sizes)
                live_max = [int(m) for m in peaks]
        self._partition_max_size = live_max
        # Cleared only after the swap: a concurrent query that observes
        # the flag down must also observe the recomputed bounds (the
        # recompute is idempotent, so a duplicated pass is benign).
        self._live_max_dirty = False

    # ------------------------------------------------------------------ #
    # Drift monitor + compaction
    # ------------------------------------------------------------------ #

    def drift_stats(self) -> dict:
        """How far the live corpus has drifted from the built partitioning.

        All O(num_partitions) — safe to poll on every mutation.  The
        components (each reported clipped to ``[0, 1]``):

        * ``depth_excess`` — growth of the partition-depth coefficient
          of variation (:func:`~repro.core.partitioner.partition_depth_cv`
          of the live counts, with delta keys routed by the base
          partitions) over the value recorded at build time.  The
          scale-free form of Figure 8's x-axis.
        * ``churn_ratio`` — fraction of the live corpus carried by the
          write tiers (delta entries + tombstones): how much work a
          :meth:`rebalance` would fold in.
        * ``skewness_shift`` — relative change of the live size
          distribution's skewness (Eq. 29, kept incrementally via
          :func:`~repro.stats.skewness.skewness_from_sums`) against the
          build-time baseline.

        ``drift_score`` is the max of the three; ``auto_rebalance_at``
        compares against it.
        """
        with self._lock:
            return self._drift_stats_locked()

    def _drift_stats_locked(self) -> dict:
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        counts = [b + d for b, d in zip(self._base_live_counts,
                                        self._delta_routed_counts)]
        total = sum(counts)
        depth_cv = partition_depth_cv(counts)
        # Every reported component is clipped to [0, 1] (the scale the
        # README documents for operators), not just the aggregate.
        depth_excess = min(1.0, max(0.0,
                                    depth_cv - self._baseline_depth_cv))
        delta_keys = len(self._delta) if self._delta is not None else 0
        churned = delta_keys + len(self._tombstones)
        # A fully-tombstoned index is all churn, not zero churn — an
        # operator must see it as maximally drifted, not healthy.
        churn = min(1.0, churned / total) if total else (
            1.0 if churned else 0.0)
        skew = skewness_from_sums(*self._moments)
        skew_shift = min(1.0, abs(skew - self._baseline_skew)
                         / (1.0 + abs(self._baseline_skew)))
        score = max(depth_excess, churn, skew_shift)
        return {
            "generation": self._generation,
            "mutation_epoch": self._mutation_epoch,
            "base_keys": len(self._sizes) - len(self._tombstones),
            "delta_keys": delta_keys,
            "tombstones": len(self._tombstones),
            "live_counts": counts,
            "depth_cv": depth_cv,
            "baseline_depth_cv": self._baseline_depth_cv,
            "depth_excess": depth_excess,
            "churn_ratio": churn,
            "size_skewness": skew,
            "baseline_skewness": self._baseline_skew,
            "skewness_shift": skew_shift,
            "drift_score": score,
            "auto_rebalance_at": self.auto_rebalance_at,
        }

    def _maybe_auto_rebalance_locked(self) -> None:
        if self.auto_rebalance_at is None or len(self) == 0:
            return
        if self.drift_stats()["drift_score"] >= self.auto_rebalance_at:
            self.rebalance()

    def rebalance(self, num_partitions: int | None = None) -> dict:
        """Fold the write tiers into a freshly partitioned base (compaction).

        See :meth:`_rebalance_locked`; the whole compaction holds the
        index lock, so concurrent queries block briefly instead of
        observing a half-swapped base tier.
        """
        with self._lock:
            return self._rebalance_locked(num_partitions)

    def _rebalance_locked(self, num_partitions: int | None = None) -> dict:
        """Fold the write tiers into a freshly partitioned base (compaction).

        Recomputes the partitioning over the merged live size
        distribution with the configured partitioner (Theorem 1/2
        applied to what the corpus looks like *now*), rebuilds the
        forests through the vectorised columnar bulk path, and resets
        the delta tier, tombstones and drift baselines.  The rebuilt
        index answers queries identically to a from-scratch
        :meth:`index` over the live entries.

        Signature rows backed by a memory-mapped snapshot are copied
        into fresh memory here — after a rebalance the index no longer
        aliases the file it was loaded from.

        Returns a summary dict (timings, tier sizes folded in, drift
        before/after) and bumps ``generation``.
        """
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        n = len(self)
        if n == 0:
            raise ValueError("cannot rebalance an index with no live keys")
        before = self.drift_stats()
        t0 = time.perf_counter()
        folded = {"base": len(self._sizes) - len(self._tombstones),
                  "delta": len(self._delta) if self._delta else 0,
                  "tombstones": len(self._tombstones)}
        matrix = np.empty((n, self.num_perm), dtype=np.uint64)
        seeds = np.empty(n, dtype=np.int64)
        keys: list = []
        sizes: list[int] = []
        row = 0
        tombstones = self._tombstones
        for key, size in self._sizes.items():
            if key in tombstones:
                continue
            signature = self._forests[
                self._route_index(size)].get_signature(key)
            matrix[row] = signature.hashvalues
            seeds[row] = signature.seed
            keys.append(key)
            sizes.append(int(size))
            row += 1
        if self._delta is not None:
            for key, signature, size in self._delta.items():
                matrix[row] = signature.hashvalues
                seeds[row] = signature.seed
                keys.append(key)
                sizes.append(int(size))
                row += 1
        if num_partitions is not None:
            if num_partitions < 1:
                raise ValueError("num_partitions must be >= 1")
            self.num_partitions = int(num_partitions)
        partitions = self._partitioner(sizes, self.num_partitions)
        self._partitions = list(partitions)
        self._forests = [
            PrefixForest(self.num_perm, self.num_trees, self.max_depth,
                         storage_factory=self._storage_factory,
                         kernel=self._kernel, bbit=self.bbit)
            for _ in self._partitions
        ]
        self._partition_max_size = [0] * len(self._partitions)
        self._live_max_dirty = False
        self._sizes = {}
        self._tombstones = set()
        self._delta = None
        self._moments = [0, 0, 0, 0]
        self._bulk_fill_locked(keys, sizes, matrix, seeds)
        self.materialize()
        self._generation += 1
        self._mutation_epoch += 1
        self._base_source = None
        after = self.drift_stats()
        return {
            "seconds": time.perf_counter() - t0,
            "generation": self._generation,
            "live_keys": n,
            "folded": folded,
            "num_partitions": len(self._partitions),
            "depth_cv_before": before["depth_cv"],
            "depth_cv_after": after["depth_cv"],
            "drift_score_before": before["drift_score"],
            "drift_score_after": after["drift_score"],
        }

    def _attach_dynamic_state_locked(self, tombstones: Iterable[Hashable],
                                     delta_index: "LSHEnsemble | None",
                                     generation: int) -> None:
        """Reattach delta/tombstone state after a manifest load.

        ``delta_index`` is a physically clean ensemble holding the delta
        entries (the loaded delta segment); ``tombstones`` must all name
        physical base keys.  Used by :mod:`repro.persistence`.
        """
        for key in tombstones:
            size = self._sizes[key]
            i = self._route_index(size)
            self._base_live_counts[i] -= 1
            self._track_size(size, -1)
        self._tombstones = set(tombstones)
        self._live_max_dirty = bool(self._tombstones)
        if delta_index is not None and len(delta_index._sizes):
            self._delta = DeltaTier.adopt(delta_index, self._delta_factory)
            for _, __, size in self._delta.items():
                self._delta_routed_counts[self._route_index(size)] += 1
                self._track_size(size, +1)
        self._generation = int(generation)

    def locked(self):
        """The index's reentrant lock, for multi-step atomic sections.

        Use ``with index.locked():`` whenever several reads/writes must
        observe one consistent state — a save that walks every tier, a
        dispatch that pairs the epoch with the overlay it describes.
        Every public method already serialises on this same lock
        internally (it is reentrant), so nesting is free; what the
        accessor buys external callers is not having to reach into the
        private ``_lock`` attribute (the invariant linter's RL001 flags
        that).
        """
        return self._lock

    def epoch_snapshot(self) -> tuple[int, dict]:
        """``(mutation_epoch, overlay)`` captured under one lock
        acquisition.

        The pair is the unit the process-pool protocol ships: an epoch
        label and exactly the tiers that epoch describes.  Reading them
        as two separate calls would let a mutator slip in between (the
        invariant linter's RL005 flags that pattern); this accessor is
        the sanctioned atomic read.
        """
        with self._lock:
            return self._mutation_epoch, self.overlay_snapshot()

    def overlay_snapshot(self) -> dict:
        """Picklable snapshot of the dynamic tiers for process workers.

        Takes the index lock (reentrant — callers already holding it
        via :meth:`locked` pay nothing), so the epoch, tombstones and
        delta contents are mutually consistent.  The delta tier ships
        as columnar arrays (the in-memory form of a v2 segment, see
        :func:`repro.persistence.export_columnar`) so a worker
        re-materialises a bit-identical inner index — same partitions,
        same tuning bounds, same signatures — and answers exactly like
        this index does at this epoch.
        """
        from repro.persistence import export_columnar

        with self._lock:
            delta_inner = (self._delta.inner_index()
                           if self._delta is not None else None)
            return {
                "epoch": self._mutation_epoch,
                "generation": self._generation,
                "tombstones": list(self._tombstones),
                "delta": (export_columnar(delta_inner)
                          if delta_inner is not None else None),
            }

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #

    def query(self, signature: MinHash | LeanMinHash,
              size: int | None = None,
              threshold: float | None = None) -> set:
        """All keys whose domains likely contain ``>= t*`` of the query.

        Parameters
        ----------
        signature:
            MinHash of the query domain ``Q``.
        size:
            ``|Q|`` if known; otherwise estimated from the signature
            (Algorithm 1's ``approx(|Q|)``).
        threshold:
            Per-query ``t*``; defaults to the constructor threshold.
        """
        results, _ = self.query_with_report(signature, size, threshold)
        return results

    def query_with_report(self, signature: MinHash | LeanMinHash,
                          size: int | None = None,
                          threshold: float | None = None,
                          ) -> tuple[set, list[PartitionQueryReport]]:
        """:meth:`query` plus per-partition tuning diagnostics."""
        with self._lock:
            return self._query_with_report_locked(signature, size, threshold)

    def _query_with_report_locked(self, signature: MinHash | LeanMinHash,
                                  size: int | None = None,
                                  threshold: float | None = None,
                                  ) -> tuple[set,
                                             list[PartitionQueryReport]]:
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        lean = _as_lean(signature)
        t_star = self.threshold if threshold is None else float(threshold)
        if not 0.0 <= t_star <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        q = int(size) if size is not None else max(1, lean.count())
        if q < 1:
            raise ValueError("query size must be >= 1")
        self._resolve_live_max_locked()
        tombstones = self._tombstones
        results: set = set()
        reports: list[PartitionQueryReport] = []
        for i, (partition, forest) in enumerate(
                zip(self._partitions, self._forests)):
            # Build-time clamped entries can exceed the nominal bound;
            # stay conservative (u tracks the live per-partition max).
            u = max(partition.upper - 1, self._partition_max_size[i])
            if forest.is_empty():
                reports.append(PartitionQueryReport(partition, None, 0, True))
                continue
            if t_star > 0 and u < t_star * q:
                # No domain this small can contain t* of the query.
                reports.append(PartitionQueryReport(partition, None, 0, True))
                continue
            t0 = time.perf_counter()
            tuning = tune_params_quantized(u, q, t_star, self.num_trees,
                                           self.max_depth, self.num_perm)
            found = forest.query(lean, tuning.b, tuning.r)
            if tombstones:
                found -= tombstones
            elapsed = time.perf_counter() - t0
            results |= found
            reports.append(
                PartitionQueryReport(partition, tuning, len(found), False,
                                     elapsed)
            )
        if self._delta is not None and len(self._delta):
            delta_found, delta_reports = self._delta.query_with_report(
                lean, q, t_star)
            results |= delta_found
            for report in delta_reports:
                report.tier = "delta"
            reports.extend(delta_reports)
        return results, reports

    def query_batch(self, batch, sizes: Sequence[int] | None = None,
                    threshold: float | None = None) -> list[set]:
        """:meth:`query` for many signatures in one pass.

        Semantically a pure optimisation: returns exactly
        ``[self.query(s, size, threshold) for s, size in zip(batch, sizes)]``
        but walks the index partition-major — per partition, every
        signature is pruned/tuned individually (Algorithm 1's per-query
        parameter selection), signatures that landed on the same
        ``(b, r)`` are probed together through the forest's vectorised
        byte-packing path, and each partition's bucket tables are touched
        once for the whole batch.

        Parameters
        ----------
        batch:
            A :class:`~repro.minhash.batch.SignatureBatch` or a sequence
            of :class:`MinHash` / :class:`LeanMinHash` signatures.
        sizes:
            Per-signature domain sizes ``|Q|``; estimated from the
            signature matrix (vectorised ``approx(|Q|)``) when omitted.
        threshold:
            Containment threshold ``t*`` shared by the whole batch;
            defaults to the constructor threshold.
        """
        with self._lock:
            return self._query_batch_locked(batch, sizes, threshold)

    def _query_batch_locked(self, batch, sizes: Sequence[int] | None = None,
                            threshold: float | None = None) -> list[set]:
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        sb = _as_batch(batch)
        n = len(sb)
        t_star = self.threshold if threshold is None else float(threshold)
        if not 0.0 <= t_star <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if n == 0:
            return []
        if sb.num_perm != self.num_perm:
            raise ValueError(
                "batch num_perm %d does not match index num_perm %d"
                % (sb.num_perm, self.num_perm)
            )
        if sizes is not None:
            qs = [int(s) for s in sizes]
            if len(qs) != n:
                raise ValueError(
                    "got %d sizes for %d signatures" % (len(qs), n)
                )
            if any(q < 1 for q in qs):
                raise ValueError("query size must be >= 1")
        else:
            qs = [max(1, int(c)) for c in sb.counts()]
        qs_arr = np.asarray(qs, dtype=np.float64)
        self._resolve_live_max_locked()
        results: list[set] = [set() for _ in range(n)]
        for i, (partition, forest) in enumerate(
                zip(self._partitions, self._forests)):
            if forest.is_empty():
                continue
            u = max(partition.upper - 1, self._partition_max_size[i])
            if t_star > 0:
                # Vectorised form of the per-query prune: a domain of at
                # most u values cannot contain t* of a larger query.
                survivors = np.nonzero(t_star * qs_arr <= u)[0]
                if not survivors.size:
                    continue
            else:
                survivors = np.arange(n)
            # Per-signature parameter selection, shared per ratio bucket:
            # tuning depends on (u, q) only through ratio_bucket(u, q)
            # (the quantised tuner's memo key), so queries in one bucket
            # are tuned once and probed together.  The bucketing itself
            # is one vectorised pass (ratio_buckets agrees with the
            # scalar ratio_bucket exactly); a stable sort then yields
            # each bucket's rows as one slice.
            bkts = ratio_buckets(u, qs_arr[survivors])
            order = np.argsort(bkts, kind="stable")
            sorted_rows = survivors[order]
            sorted_bkts = bkts[order]
            starts = np.concatenate(
                ([0], np.nonzero(np.diff(sorted_bkts))[0] + 1,
                 [sorted_bkts.size]))
            groups: dict[tuple[int, int], list[int]] = {}
            for s, e in zip(starts[:-1].tolist(), starts[1:].tolist()):
                rows = sorted_rows[s:e].tolist()
                tuning = tune_params_quantized(
                    u, qs[rows[0]], t_star, self.num_trees, self.max_depth,
                    self.num_perm)
                groups.setdefault((tuning.b, tuning.r), []).extend(rows)
            for (b, r), rows in groups.items():
                # Merge straight into the global result sets — no
                # per-partition intermediates.
                forest.query_batch_into(sb.take(rows), b, r, results, rows)
        # Tombstones filter only the base-tier candidates; a key
        # re-inserted after removal lives in the delta and must survive.
        if self._tombstones:
            tombstones = self._tombstones
            for found in results:
                if found:
                    found.difference_update(tombstones)
        if self._delta is not None and len(self._delta):
            for found, extra in zip(results,
                                    self._delta.query_batch(sb, qs, t_star)):
                found |= extra
        return results

    def query_top_k(self, signature: MinHash | LeanMinHash, k: int,
                    size: int | None = None, min_threshold: float = 0.05,
                    ) -> list[tuple[Hashable, float]]:
        """The ``k`` domains with the highest *estimated* containment.

        The paper (Section 2) notes the top-k formulation is
        complementary to threshold search; this extension implements it
        on top of the threshold machinery: walk a descending threshold
        ladder until at least ``k`` candidates accumulate (or
        ``min_threshold`` is reached), then rank candidates by
        signature-estimated containment (Eq. 6 inverted).

        Returns ``(key, estimated_containment)`` pairs, best first.  The
        estimates are approximate — a verification pass over raw values
        is still advisable before acting on fine-grained ordering.
        """
        from repro.core.estimation import rank_candidates

        _validate_topk_args(k, min_threshold)
        lean = _as_lean(signature)
        q = int(size) if size is not None else max(1, lean.count())
        with self._lock:
            candidates = _ladder_candidates(
                lambda threshold: self.query(lean, size=q,
                                             threshold=threshold),
                k, min_threshold)
            pool = {key: self._signature_of(key) for key in candidates}
            ranked = rank_candidates(lean, pool, query_size=q,
                                     sizes={key: self.size_of(key)
                                            for key in candidates})
        return ranked[:k]

    def query_top_k_batch(self, batch, k: int,
                          sizes: Sequence[int] | None = None,
                          min_threshold: float = 0.05,
                          ) -> list[list[tuple[Hashable, float]]]:
        """:meth:`query_top_k` for many signatures in one pass.

        Walks the same descending threshold ladder as the single-query
        variant, but each rung is answered with :meth:`query_batch` over
        only the signatures that still need candidates — so the expensive
        early (high-threshold) rungs are shared by the whole batch.
        Returns one ranked ``(key, estimated_containment)`` list per row,
        equal to ``[self.query_top_k(s, k, size) for s, size in batch]``.
        """
        from repro.core.estimation import rank_candidates

        _validate_topk_args(k, min_threshold)
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        sb = _as_batch(batch)
        n = len(sb)
        if n == 0:
            return []
        if sizes is not None:
            if len(sizes) != n:
                raise ValueError(
                    "got %d sizes for %d signatures" % (len(sizes), n)
                )
            qs = [int(s) for s in sizes]
        else:
            qs = [max(1, int(c)) for c in sb.counts()]
        with self._lock:
            candidates = _ladder_candidates_batch(
                lambda rows, threshold: self.query_batch(
                    SignatureBatch(None, sb.take(rows), seed=sb.seed),
                    sizes=[qs[j] for j in rows], threshold=threshold),
                n, k, min_threshold)
            out: list[list[tuple[Hashable, float]]] = []
            for j in range(n):
                pool = {key: self._signature_of(key)
                        for key in candidates[j]}
                ranked = rank_candidates(sb[j], pool, query_size=qs[j],
                                         sizes={key: self.size_of(key)
                                                for key in candidates[j]})
                out.append(ranked[:k])
        return out

    def _signature_of(self, key: Hashable) -> LeanMinHash:
        """Signature of a *live* key (either tier); no tombstone check."""
        if self._delta is not None and key in self._delta:
            return self._delta.get_signature(key)
        forest = self._forests[self._route_index(self._sizes[key])]
        return forest.get_signature(key)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def get_signature(self, key: Hashable) -> LeanMinHash:
        """The stored signature for ``key`` (KeyError when absent)."""
        if self._delta is not None and key in self._delta:
            return self._delta.get_signature(key)
        if key not in self._sizes or key in self._tombstones:
            raise KeyError(key)
        return self._signature_of(key)

    def _live_items(self) -> Iterable[tuple[Hashable, int]]:
        """``(key, size)`` for every live domain, base tier first."""
        tombstones = self._tombstones
        for key, size in self._sizes.items():
            if key not in tombstones:
                yield key, size
        if self._delta is not None:
            for key, _, size in self._delta.items():
                yield key, size

    def stats(self) -> dict:
        """Operational statistics: partition fill and size spread.

        Returns a dict with one entry per partition: bounds, live domain
        count, and the min/max live size routed there (delta entries are
        routed by the base partitions for this report) — the numbers an
        operator watches to decide when distribution drift warrants a
        :meth:`rebalance`, plus the tier sizes themselves.  See
        :meth:`drift_stats` for the condensed drift score.
        """
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        lo = self._partitions[0].lower
        hi = self._partitions[-1].upper - 1
        per_partition: list[dict] = [
            {
                "lower": p.lower,
                "upper": p.upper,
                "count": 0,
                "min_size": None,
                "max_size": None,
            }
            for p in self._partitions
        ]
        for key, size in self._live_items():
            clamped = min(max(size, lo), hi)
            i = assign_partition(clamped, self._partitions)
            entry = per_partition[i]
            entry["count"] += 1
            if entry["min_size"] is None or size < entry["min_size"]:
                entry["min_size"] = size
            if entry["max_size"] is None or size > entry["max_size"]:
                entry["max_size"] = size
        counts = [e["count"] for e in per_partition]
        mean = sum(counts) / len(counts)
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        return {
            "num_domains": len(self),
            "num_partitions": len(self._partitions),
            "partition_count_std": variance ** 0.5,
            "partitions": per_partition,
            "base_keys": len(self._sizes) - len(self._tombstones),
            "delta_keys": len(self._delta) if self._delta is not None else 0,
            "tombstones": len(self._tombstones),
            "generation": self._generation,
            "mutation_epoch": self._mutation_epoch,
        }

    @property
    def partitions(self) -> list[Partition]:
        """The partition intervals the base tier was built with."""
        return list(self._partitions)

    @property
    def kernel(self):
        """The resolved hot-loop kernel backend (see :mod:`repro.kernels`)."""
        return self._kernel

    @property
    def generation(self) -> int:
        """Compaction generation: 0 at build, +1 per :meth:`rebalance`."""
        return self._generation

    @property
    def mutation_epoch(self) -> int:
        """Monotonic logical-mutation counter: 0 at build, +1 per
        :meth:`insert` / :meth:`remove` / :meth:`rebalance`.

        ``generation`` only moves on compaction, so two snapshots of the
        index can share a generation yet answer differently; the epoch
        distinguishes them.  A result computed at epoch E is valid
        exactly while ``mutation_epoch == E`` — the serving layer's
        result cache keys on it.
        """
        return self._mutation_epoch

    def size_of(self, key: Hashable) -> int:
        """The recorded domain size for ``key``."""
        if self._delta is not None and key in self._delta:
            return self._delta.size_of(key)
        if key in self._tombstones:
            raise KeyError(key)
        return self._sizes[key]

    def keys(self) -> Iterable[Hashable]:
        return (key for key, _ in self._live_items())

    def __contains__(self, key: Hashable) -> bool:
        if self._delta is not None and key in self._delta:
            return True
        return key in self._sizes and key not in self._tombstones

    def __len__(self) -> int:
        delta = len(self._delta) if self._delta is not None else 0
        return len(self._sizes) - len(self._tombstones) + delta

    def is_empty(self) -> bool:
        return len(self) == 0

    def __repr__(self) -> str:
        return ("LSHEnsemble(threshold=%.2f, num_perm=%d, partitions=%d, "
                "keys=%d, generation=%d)"
                % (self.threshold, self.num_perm, len(self._partitions),
                   len(self), self._generation))
