"""LSH Ensemble — the paper's primary contribution (Section 5).

The index partitions domains by cardinality and keeps one dynamic LSH
(:class:`~repro.forest.prefix_forest.PrefixForest`) per partition.  A
containment query ``(Q, t*)`` is answered per partition (Algorithm 1):

1. estimate the query size ``q`` from its signature (``approx(|Q|)``);
2. convert ``t*`` to that partition's conservative Jaccard threshold using
   the partition's size upper bound ``u_i`` (Eq. 7) — realised here by
   tuning ``(b_i, r_i)`` directly against the containment-space objective
   (Eq. 26);
3. query the partition's forest at ``(b_i, r_i)``;

and the union of the partition results is returned
(``Partitioned-Containment-Search``).  Partitions whose largest possible
containment ``u_i / q`` is below ``t*`` cannot hold a true positive and
are pruned outright.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from repro.core.partitioner import (
    Partition,
    assign_partition,
    equi_depth_partitions,
)
from repro.core.tuning import (
    TuningResult,
    ratio_bucket,
    tune_params_quantized,
)
from repro.forest.prefix_forest import PrefixForest, default_forest_shape
from repro.lsh.storage import DictHashTableStorage
from repro.minhash.batch import SignatureBatch
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash

__all__ = ["LSHEnsemble", "PartitionQueryReport"]


class PartitionQueryReport:
    """Diagnostics for one partition's contribution to a query.

    ``elapsed_seconds`` is the wall time of this partition's probe.  The
    paper evaluates partitions concurrently (Eq. 9 minimises the *max*
    per-partition cost for exactly that reason), so the parallel-model
    query time of a whole ensemble query is ``max`` over these, while the
    single-worker time is their sum.
    """

    __slots__ = ("partition", "tuning", "num_candidates", "pruned",
                 "elapsed_seconds")

    def __init__(self, partition: Partition, tuning: TuningResult | None,
                 num_candidates: int, pruned: bool,
                 elapsed_seconds: float = 0.0) -> None:
        self.partition = partition
        self.tuning = tuning
        self.num_candidates = num_candidates
        self.pruned = pruned
        self.elapsed_seconds = elapsed_seconds

    def __repr__(self) -> str:
        if self.pruned:
            return "PartitionQueryReport([%d, %d), pruned)" % (
                self.partition.lower, self.partition.upper)
        return ("PartitionQueryReport([%d, %d), b=%d, r=%d, candidates=%d)"
                % (self.partition.lower, self.partition.upper,
                   self.tuning.b, self.tuning.r, self.num_candidates))


def _as_lean(signature: MinHash | LeanMinHash) -> LeanMinHash:
    if isinstance(signature, LeanMinHash):
        return signature
    if isinstance(signature, MinHash):
        return LeanMinHash(signature)
    raise TypeError(
        "expected MinHash or LeanMinHash, got %r" % type(signature).__name__
    )


def _as_batch(batch) -> SignatureBatch:
    if isinstance(batch, SignatureBatch):
        return batch
    if isinstance(batch, np.ndarray):
        return SignatureBatch(None, batch)
    return SignatureBatch.from_signatures(list(batch))


class LSHEnsemble:
    """Containment-search index over domains with skewed cardinalities.

    Parameters
    ----------
    threshold:
        Default containment threshold ``t*``; can be overridden per query.
    num_perm:
        Signature length ``m`` (paper default 256).
    num_partitions:
        Number of cardinality partitions ``n`` (paper evaluates 8/16/32).
    num_trees, max_depth:
        Per-partition forest shape ``(B, K)``; defaults to the balanced
        shape for ``num_perm`` (32 trees of depth 8 at ``m = 256``).
    partitioner:
        Callable ``(sizes, n) -> list[Partition]`` used by :meth:`index`;
        defaults to equi-depth (Theorem 2).  Pass
        :func:`~repro.core.partitioner.optimal_partitions` for non-power-law
        data, or a custom callable.
    storage_factory:
        Bucket backend for the underlying forests.

    The index is built in one shot with :meth:`index` (partition bounds are
    derived from the data, as in the paper), after which new domains can
    still be added with :meth:`insert` — they are routed to the existing
    partition covering their size (the Figure 8 dynamic-data regime).
    """

    def __init__(self, threshold: float = 0.8, num_perm: int = 256,
                 num_partitions: int = 8,
                 num_trees: int | None = None, max_depth: int | None = None,
                 partitioner=equi_depth_partitions,
                 storage_factory=DictHashTableStorage) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if num_perm < 2:
            raise ValueError("num_perm must be at least 2")
        self.threshold = float(threshold)
        self.num_perm = int(num_perm)
        self.num_partitions = int(num_partitions)
        if num_trees is None or max_depth is None:
            auto_trees, auto_depth = default_forest_shape(num_perm)
            num_trees = num_trees if num_trees is not None else auto_trees
            max_depth = max_depth if max_depth is not None else auto_depth
        if num_trees * max_depth > num_perm:
            raise ValueError(
                "num_trees * max_depth = %d exceeds num_perm = %d"
                % (num_trees * max_depth, num_perm)
            )
        self.num_trees = int(num_trees)
        self.max_depth = int(max_depth)
        self._partitioner = partitioner
        self._storage_factory = storage_factory
        self._partitions: list[Partition] = []
        self._forests: list[PrefixForest] = []
        self._sizes: dict[Hashable, int] = {}
        # Largest *true* size routed into each partition.  Clamped inserts
        # (sizes beyond the built range, Section 6.2's drift regime) can
        # exceed the partition's nominal upper bound; queries must use the
        # larger of the two or pruning/tuning would lose those domains.
        self._partition_max_size: list[int] = []

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def index(self, entries: Iterable[tuple[Hashable, MinHash | LeanMinHash,
                                            int]],
              partitions: Sequence[Partition] | None = None) -> None:
        """Bulk-build the index from ``(key, signature, size)`` triples.

        Partition bounds come from the configured partitioner applied to
        the observed sizes, unless explicit ``partitions`` are supplied
        (used by the Figure 8 sweep to impose blended partitionings).
        """
        if self._forests:
            raise RuntimeError("index() may only be called on an empty index")
        staged = list(entries)
        if not staged:
            raise ValueError("cannot index an empty collection of domains")
        sizes = [int(size) for _, __, size in staged]
        if min(sizes) < 1:
            raise ValueError("all domain sizes must be >= 1")
        if partitions is not None:
            self._partitions = list(partitions)
        else:
            self._partitions = self._partitioner(sizes, self.num_partitions)
        keys = [key for key, __, ___ in staged]
        if len(set(keys)) != len(keys):
            seen: set = set()
            for key in keys:
                if key in seen:
                    raise ValueError(
                        "key %r is already in the index" % (key,))
                seen.add(key)
        # One (n, m) matrix for the whole build: routing, partition
        # grouping, and bucket-key packing all become numpy passes
        # instead of n Python round trips through insert().
        matrix = np.empty((len(staged), self.num_perm), dtype=np.uint64)
        seeds = np.empty(len(staged), dtype=np.int64)
        for i, (_, signature, __) in enumerate(staged):
            if not isinstance(signature, (MinHash, LeanMinHash)):
                raise TypeError(
                    "expected MinHash or LeanMinHash, got %r"
                    % type(signature).__name__
                )
            if signature.num_perm != self.num_perm:
                raise ValueError(
                    "signature num_perm %d does not match forest num_perm %d"
                    % (signature.num_perm, self.num_perm)
                )
            matrix[i] = signature.hashvalues
            seeds[i] = signature.seed
        self._forests = [
            PrefixForest(self.num_perm, self.num_trees, self.max_depth,
                         storage_factory=self._storage_factory)
            for _ in self._partitions
        ]
        self._partition_max_size = [0] * len(self._partitions)
        self._bulk_fill(keys, sizes, matrix, seeds)
        # A fresh build is served immediately: pay the bucket fill now
        # (still one vectorised pass per depth) rather than on the first
        # queries.  Loaded snapshots stay lazy — see _restore_columnar.
        self.materialize()

    def materialize(self) -> None:
        """Fill any lazily pending bucket tables in every partition.

        After :func:`~repro.persistence.load_ensemble`, bucket tables
        materialise per depth as queries first reach them; call this to
        warm the whole index up front instead (e.g. before putting a
        replica into rotation).
        """
        for forest in self._forests:
            forest.materialize()

    def _assign_partitions(self, clamped: np.ndarray) -> np.ndarray:
        """Partition index per (already clamped) size, vectorised."""
        parts = self._partitions
        contiguous = all(parts[i].upper == parts[i + 1].lower
                         for i in range(len(parts) - 1))
        if contiguous:
            bounds = np.fromiter(
                (p.lower for p in parts), dtype=np.int64, count=len(parts))
            bounds = np.concatenate([bounds, [parts[-1].upper]])
            return np.searchsorted(bounds, clamped, side="right") - 1
        # Caller-supplied partitions with gaps: fall back to the exact
        # per-size scan (raises for sizes no partition covers, exactly
        # like the single-entry path).
        return np.fromiter(
            (assign_partition(int(c), parts) for c in clamped),
            dtype=np.intp, count=len(clamped))

    def _bulk_fill(self, keys: list, sizes: list[int], matrix: np.ndarray,
                   seeds: np.ndarray) -> None:
        """Group rows by partition and bulk-insert each group's block."""
        parts = self._partitions
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        clamped = np.clip(sizes_arr, parts[0].lower, parts[-1].upper - 1)
        idx = self._assign_partitions(clamped)
        order = np.argsort(idx, kind="stable")
        order_list = order.tolist()
        ordered = matrix[order]
        ordered.setflags(write=False)
        keys_o = [keys[j] for j in order_list]
        sizes_o = sizes_arr[order]
        seeds_o = seeds[order]
        # Signatures of one build usually share a seed; collapsing to a
        # scalar skips a per-row int() in the forest wrap loop.
        shared_seed = (int(seeds_o[0])
                       if bool((seeds_o == seeds_o[0]).all()) else None)
        counts = np.bincount(idx, minlength=len(parts)).tolist()
        off = 0
        for i, count in enumerate(counts):
            if count:
                block_seeds = (shared_seed if shared_seed is not None
                               else seeds_o[off:off + count])
                self._forests[i].insert_batch(
                    keys_o[off:off + count], ordered[off:off + count],
                    block_seeds)
                peak = int(sizes_o[off:off + count].max())
                if peak > self._partition_max_size[i]:
                    self._partition_max_size[i] = peak
            off += count
        self._sizes.update(zip(keys, sizes))

    def _restore_columnar(self, partitions: Sequence[Partition], keys: list,
                          sizes: list[int], matrix: np.ndarray,
                          seeds, partition_rows: Sequence[int],
                          partition_max_size: Sequence[int]) -> None:
        """Rebuild from a columnar snapshot (persistence format v2).

        ``matrix`` rows must already be ordered partition-major with
        ``partition_rows[i]`` rows per partition, so every partition's
        block is a contiguous zero-copy slice (possibly of a memmap).
        ``partition_max_size`` is restored verbatim — it can exceed what
        the stored sizes imply when the saved index had its largest
        domains removed, and queries must stay conservative about that.
        """
        if self._forests:
            raise RuntimeError(
                "restore requires an empty index; this one is built")
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys in snapshot")
        self._partitions = list(partitions)
        self._forests = [
            PrefixForest(self.num_perm, self.num_trees, self.max_depth,
                         storage_factory=self._storage_factory)
            for _ in self._partitions
        ]
        self._partition_max_size = [int(m) for m in partition_max_size]
        scalar_seeds = np.ndim(seeds) == 0
        off = 0
        for i, count in enumerate(partition_rows):
            count = int(count)
            if count:
                self._forests[i].insert_batch(
                    keys[off:off + count], matrix[off:off + count],
                    seeds if scalar_seeds else seeds[off:off + count])
            off += count
        self._sizes.update(zip(keys, (int(s) for s in sizes)))

    def insert(self, key: Hashable, signature: MinHash | LeanMinHash,
               size: int) -> None:
        """Add one domain to an already-built index.

        Sizes beyond the built range are clamped into the boundary
        partitions; heavy drift degrades the equi-depth optimality (the
        paper's Section 6.2) but never correctness of what is stored.
        """
        if not self._forests:
            raise RuntimeError("call index() before insert()")
        if size < 1:
            raise ValueError("domain size must be >= 1")
        self._route(key, signature, size)

    def _route(self, key: Hashable, signature: MinHash | LeanMinHash,
               size: int) -> None:
        if key in self._sizes:
            raise ValueError("key %r is already in the index" % (key,))
        clamped = min(max(size, self._partitions[0].lower),
                      self._partitions[-1].upper - 1)
        i = assign_partition(clamped, self._partitions)
        self._forests[i].insert(key, _as_lean(signature))
        self._sizes[key] = size
        if size > self._partition_max_size[i]:
            self._partition_max_size[i] = size

    def remove(self, key: Hashable) -> None:
        """Remove a domain from the index."""
        size = self._sizes.pop(key, None)
        if size is None:
            raise KeyError(key)
        clamped = min(max(size, self._partitions[0].lower),
                      self._partitions[-1].upper - 1)
        self._forests[assign_partition(clamped, self._partitions)].remove(key)

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #

    def query(self, signature: MinHash | LeanMinHash,
              size: int | None = None,
              threshold: float | None = None) -> set:
        """All keys whose domains likely contain ``>= t*`` of the query.

        Parameters
        ----------
        signature:
            MinHash of the query domain ``Q``.
        size:
            ``|Q|`` if known; otherwise estimated from the signature
            (Algorithm 1's ``approx(|Q|)``).
        threshold:
            Per-query ``t*``; defaults to the constructor threshold.
        """
        results, _ = self.query_with_report(signature, size, threshold)
        return results

    def query_with_report(self, signature: MinHash | LeanMinHash,
                          size: int | None = None,
                          threshold: float | None = None,
                          ) -> tuple[set, list[PartitionQueryReport]]:
        """:meth:`query` plus per-partition tuning diagnostics."""
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        lean = _as_lean(signature)
        t_star = self.threshold if threshold is None else float(threshold)
        if not 0.0 <= t_star <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        q = int(size) if size is not None else max(1, lean.count())
        if q < 1:
            raise ValueError("query size must be >= 1")
        results: set = set()
        reports: list[PartitionQueryReport] = []
        for i, (partition, forest) in enumerate(
                zip(self._partitions, self._forests)):
            # Clamped inserts can exceed the nominal bound; stay
            # conservative (remove() never shrinks the tracked max).
            u = max(partition.upper - 1, self._partition_max_size[i])
            if forest.is_empty():
                reports.append(PartitionQueryReport(partition, None, 0, True))
                continue
            if t_star > 0 and u < t_star * q:
                # No domain this small can contain t* of the query.
                reports.append(PartitionQueryReport(partition, None, 0, True))
                continue
            t0 = time.perf_counter()
            tuning = tune_params_quantized(u, q, t_star, self.num_trees,
                                           self.max_depth, self.num_perm)
            found = forest.query(lean, tuning.b, tuning.r)
            elapsed = time.perf_counter() - t0
            results |= found
            reports.append(
                PartitionQueryReport(partition, tuning, len(found), False,
                                     elapsed)
            )
        return results, reports

    def query_batch(self, batch, sizes: Sequence[int] | None = None,
                    threshold: float | None = None) -> list[set]:
        """:meth:`query` for many signatures in one pass.

        Semantically a pure optimisation: returns exactly
        ``[self.query(s, size, threshold) for s, size in zip(batch, sizes)]``
        but walks the index partition-major — per partition, every
        signature is pruned/tuned individually (Algorithm 1's per-query
        parameter selection), signatures that landed on the same
        ``(b, r)`` are probed together through the forest's vectorised
        byte-packing path, and each partition's bucket tables are touched
        once for the whole batch.

        Parameters
        ----------
        batch:
            A :class:`~repro.minhash.batch.SignatureBatch` or a sequence
            of :class:`MinHash` / :class:`LeanMinHash` signatures.
        sizes:
            Per-signature domain sizes ``|Q|``; estimated from the
            signature matrix (vectorised ``approx(|Q|)``) when omitted.
        threshold:
            Containment threshold ``t*`` shared by the whole batch;
            defaults to the constructor threshold.
        """
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        sb = _as_batch(batch)
        n = len(sb)
        t_star = self.threshold if threshold is None else float(threshold)
        if not 0.0 <= t_star <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if n == 0:
            return []
        if sb.num_perm != self.num_perm:
            raise ValueError(
                "batch num_perm %d does not match index num_perm %d"
                % (sb.num_perm, self.num_perm)
            )
        if sizes is not None:
            qs = [int(s) for s in sizes]
            if len(qs) != n:
                raise ValueError(
                    "got %d sizes for %d signatures" % (len(qs), n)
                )
            if any(q < 1 for q in qs):
                raise ValueError("query size must be >= 1")
        else:
            qs = [max(1, int(c)) for c in sb.counts()]
        qs_arr = np.asarray(qs, dtype=np.float64)
        results: list[set] = [set() for _ in range(n)]
        for i, (partition, forest) in enumerate(
                zip(self._partitions, self._forests)):
            if forest.is_empty():
                continue
            u = max(partition.upper - 1, self._partition_max_size[i])
            if t_star > 0:
                # Vectorised form of the per-query prune: a domain of at
                # most u values cannot contain t* of a larger query.
                survivors = np.nonzero(t_star * qs_arr <= u)[0].tolist()
                if not survivors:
                    continue
            else:
                survivors = range(n)
            # Per-signature parameter selection, shared per ratio bucket:
            # tuning depends on (u, q) only through ratio_bucket(u, q)
            # (the quantised tuner's memo key), so queries in one bucket
            # are tuned once and probed together.
            buckets: dict[int, list[int]] = {}
            for j in survivors:
                buckets.setdefault(ratio_bucket(u, qs[j]), []).append(j)
            groups: dict[tuple[int, int], list[int]] = {}
            for rows in buckets.values():
                tuning = tune_params_quantized(
                    u, qs[rows[0]], t_star, self.num_trees, self.max_depth,
                    self.num_perm)
                groups.setdefault((tuning.b, tuning.r), []).extend(rows)
            for (b, r), rows in groups.items():
                # Merge straight into the global result sets — no
                # per-partition intermediates.
                forest.query_batch_into(sb.take(rows), b, r, results, rows)
        return results

    def query_top_k(self, signature: MinHash | LeanMinHash, k: int,
                    size: int | None = None, min_threshold: float = 0.05,
                    ) -> list[tuple[Hashable, float]]:
        """The ``k`` domains with the highest *estimated* containment.

        The paper (Section 2) notes the top-k formulation is
        complementary to threshold search; this extension implements it
        on top of the threshold machinery: walk a descending threshold
        ladder until at least ``k`` candidates accumulate (or
        ``min_threshold`` is reached), then rank candidates by
        signature-estimated containment (Eq. 6 inverted).

        Returns ``(key, estimated_containment)`` pairs, best first.  The
        estimates are approximate — a verification pass over raw values
        is still advisable before acting on fine-grained ordering.
        """
        from repro.core.estimation import rank_candidates

        if k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 < min_threshold <= 1.0:
            raise ValueError("min_threshold must be in (0, 1]")
        lean = _as_lean(signature)
        q = int(size) if size is not None else max(1, lean.count())
        candidates: set = set()
        threshold = 0.95
        while True:
            candidates |= self.query(lean, size=q, threshold=threshold)
            if len(candidates) >= k or threshold <= min_threshold:
                break
            threshold = max(min_threshold, threshold - 0.15)
        pool = {key: self._signature_of(key) for key in candidates}
        ranked = rank_candidates(lean, pool, query_size=q,
                                 sizes={key: self._sizes[key]
                                        for key in candidates})
        return ranked[:k]

    def query_top_k_batch(self, batch, k: int,
                          sizes: Sequence[int] | None = None,
                          min_threshold: float = 0.05,
                          ) -> list[list[tuple[Hashable, float]]]:
        """:meth:`query_top_k` for many signatures in one pass.

        Walks the same descending threshold ladder as the single-query
        variant, but each rung is answered with :meth:`query_batch` over
        only the signatures that still need candidates — so the expensive
        early (high-threshold) rungs are shared by the whole batch.
        Returns one ranked ``(key, estimated_containment)`` list per row,
        equal to ``[self.query_top_k(s, k, size) for s, size in batch]``.
        """
        from repro.core.estimation import rank_candidates

        if k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 < min_threshold <= 1.0:
            raise ValueError("min_threshold must be in (0, 1]")
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        sb = _as_batch(batch)
        n = len(sb)
        if n == 0:
            return []
        if sizes is not None:
            if len(sizes) != n:
                raise ValueError(
                    "got %d sizes for %d signatures" % (len(sizes), n)
                )
            qs = [int(s) for s in sizes]
        else:
            qs = [max(1, int(c)) for c in sb.counts()]
        candidates: list[set] = [set() for _ in range(n)]
        active = list(range(n))
        threshold = 0.95
        while active:
            found = self.query_batch(
                SignatureBatch(None, sb.take(active), seed=sb.seed),
                sizes=[qs[j] for j in active], threshold=threshold)
            still_active = []
            for j, hits in zip(active, found):
                candidates[j] |= hits
                # Same stop rule as the single-query ladder: enough
                # candidates, or the floor rung has been probed.
                if len(candidates[j]) < k and threshold > min_threshold:
                    still_active.append(j)
            active = still_active
            threshold = max(min_threshold, threshold - 0.15)
        out: list[list[tuple[Hashable, float]]] = []
        for j in range(n):
            pool = {key: self._signature_of(key) for key in candidates[j]}
            ranked = rank_candidates(sb[j], pool, query_size=qs[j],
                                     sizes={key: self._sizes[key]
                                            for key in candidates[j]})
            out.append(ranked[:k])
        return out

    def _signature_of(self, key: Hashable) -> LeanMinHash:
        clamped = min(max(self._sizes[key], self._partitions[0].lower),
                      self._partitions[-1].upper - 1)
        forest = self._forests[assign_partition(clamped, self._partitions)]
        return forest.get_signature(key)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def get_signature(self, key: Hashable) -> LeanMinHash:
        """The stored signature for ``key`` (KeyError when absent)."""
        if key not in self._sizes:
            raise KeyError(key)
        return self._signature_of(key)

    def stats(self) -> dict:
        """Operational statistics: partition fill and size spread.

        Returns a dict with one entry per partition: bounds, domain
        count, and the min/max stored size routed there — the numbers an
        operator watches to decide when distribution drift warrants a
        rebuild (Section 6.2).
        """
        if not self._forests:
            raise RuntimeError("the index is empty; call index() first")
        lo = self._partitions[0].lower
        hi = self._partitions[-1].upper - 1
        per_partition: list[dict] = [
            {
                "lower": p.lower,
                "upper": p.upper,
                "count": 0,
                "min_size": None,
                "max_size": None,
            }
            for p in self._partitions
        ]
        for key, size in self._sizes.items():
            clamped = min(max(size, lo), hi)
            i = assign_partition(clamped, self._partitions)
            entry = per_partition[i]
            entry["count"] += 1
            if entry["min_size"] is None or size < entry["min_size"]:
                entry["min_size"] = size
            if entry["max_size"] is None or size > entry["max_size"]:
                entry["max_size"] = size
        counts = [e["count"] for e in per_partition]
        mean = sum(counts) / len(counts)
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        return {
            "num_domains": len(self._sizes),
            "num_partitions": len(self._partitions),
            "partition_count_std": variance ** 0.5,
            "partitions": per_partition,
        }

    @property
    def partitions(self) -> list[Partition]:
        """The partition intervals the index was built with."""
        return list(self._partitions)

    def size_of(self, key: Hashable) -> int:
        """The recorded domain size for ``key``."""
        return self._sizes[key]

    def keys(self) -> Iterable[Hashable]:
        return self._sizes.keys()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._sizes

    def __len__(self) -> int:
        return len(self._sizes)

    def is_empty(self) -> bool:
        return not self._sizes

    def __repr__(self) -> str:
        return ("LSHEnsemble(threshold=%.2f, num_perm=%d, partitions=%d, "
                "keys=%d)" % (self.threshold, self.num_perm,
                              len(self._partitions), len(self._sizes)))
