"""The false-positive cost model of Section 5.3 (Propositions 1 and 2).

Filtering a partition ``[l, u)`` with the conservative Jaccard threshold of
Eq. 7 admits domains whose true containment lies in ``[t_x, t*)`` — false
positives of the *threshold conversion* (distinct from the LSH
approximation errors handled in :mod:`repro.core.tuning`).  Assuming the
containment of an arbitrary domain is uniform on ``[0, 1]``:

    P(X is FP | x)  =  (t* - t_x) / t*   =  1 - (x + q) / (u + q)   (Eq. 11)

and, under a uniform domain-size distribution inside the partition, the
expected FP count is bounded by (Prop. 2):

    N^FP_{l,u}  <=  N_{l,u} * (u - l + 1) / (2u)                    (Eq. 13)

The partitioning cost to minimise is ``max_i N^FP_i`` (Eq. 9).  Under the
paper's large-domain assumption ``u >> q``, the bound ``M_i`` (Eq. 16) is
query independent, which is what makes offline partitioning possible.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.containment import effective_containment_threshold

__all__ = [
    "false_positive_probability",
    "expected_false_positives",
    "false_positive_upper_bound",
    "partition_cost",
    "partitioning_cost",
]


def false_positive_probability(x: float, q: float, u: float,
                               t_star: float) -> float:
    """P(domain of size ``x`` is a conversion false positive) — Eq. 11.

    Handles the case split of Proposition 2's proof: a domain's containment
    cannot exceed ``min(1, x/q)``, so the FP window is clipped accordingly.
    """
    if t_star <= 0.0:
        return 0.0
    t_x = effective_containment_threshold(t_star, x, u, q)
    # Maximum achievable containment for a domain of size x.
    t_max = min(1.0, x / q)
    if t_max <= t_x:
        # Even the best case cannot pass the effective threshold (case 5).
        return 0.0
    if t_max >= t_star:
        # Full window [t_x, t*) is reachable (case 1).
        return (t_star - t_x) / t_star
    # Window clipped by the size ratio (cases 2-4): containment uniform on
    # [0, t_max], FP when in [t_x, t_max).
    return (t_max - t_x) / t_max


def expected_false_positives(sizes: Sequence[float] | np.ndarray, q: float,
                             l: float, u: float, t_star: float) -> float:
    """Exact-model expected FP count for the sizes falling in ``[l, u)``.

    Sums Eq. 11 over the actual empirical sizes rather than assuming a
    uniform in-partition distribution — used to validate Prop. 2's bound.
    """
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    in_part = sizes_arr[(sizes_arr >= l) & (sizes_arr < u)]
    return float(
        sum(false_positive_probability(x, q, u, t_star) for x in in_part)
    )


def false_positive_upper_bound(count: int, l: float, u: float) -> float:
    """``M = N_{l,u} (u - l + 1) / (2u)`` — Eq. 13 / Eq. 16.

    Query independent under the ``u >> q`` assumption; this is the quantity
    the equi-``M_i`` partitioner balances.
    """
    if u <= 0:
        raise ValueError("u must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    if u <= l:
        raise ValueError("partition upper bound must exceed lower bound")
    return count * (u - l + 1.0) / (2.0 * u)


def partition_cost(sizes: Sequence[float] | np.ndarray, l: float,
                   u: float) -> float:
    """Eq. 16's ``M_i`` computed from the empirical sizes in ``[l, u)``."""
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    count = int(np.count_nonzero((sizes_arr >= l) & (sizes_arr < u)))
    return false_positive_upper_bound(count, l, u)


def partitioning_cost(sizes: Sequence[float] | np.ndarray,
                      boundaries: Sequence[tuple[float, float]]) -> float:
    """``cost(Π) = max_i M_i`` — Eq. 9 with the Prop. 2 bound plugged in."""
    if not boundaries:
        raise ValueError("boundaries must contain at least one partition")
    return max(partition_cost(sizes, l, u) for l, u in boundaries)
