"""Containment <-> Jaccard algebra (Section 5.1 and 5.5 of the paper).

Set containment ``t(Q, X) = |Q ∩ X| / |Q|`` and Jaccard similarity
``s(Q, X) = |Q ∩ X| / |Q ∪ X|`` are linked by inclusion-exclusion once the
two cardinalities ``q = |Q|`` and ``x = |X|`` are known (Eq. 6):

    s = t / (x/q + 1 - t)          t = (x/q + 1) * s / (1 + s)

LSH indexes filter by Jaccard similarity, so a containment threshold ``t*``
must be converted.  The conversion uses a partition's domain-size *upper
bound* ``u >= x`` (Eq. 7), which makes the resulting Jaccard threshold a
lower bound on the exact one and therefore introduces **no new false
negatives** — only false positives, which the cost model of Section 5.3
quantifies.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "containment",
    "jaccard",
    "containment_to_jaccard",
    "jaccard_to_containment",
    "conservative_jaccard_threshold",
    "effective_containment_threshold",
    "candidate_probability_containment",
]


def containment(query: set, domain: set) -> float:
    """Exact set containment ``t(Q, X) = |Q ∩ X| / |Q|`` (Definition 1)."""
    if not query:
        raise ValueError("query domain must be non-empty")
    return len(query & domain) / len(query)


def jaccard(a: set, b: set) -> float:
    """Exact Jaccard similarity ``|A ∩ B| / |A ∪ B|`` (Eq. 3)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union


def containment_to_jaccard(t, x: float, q: float):
    """``ŝ_{x,q}(t) = t / (x/q + 1 - t)`` — Eq. 6, vectorised over ``t``.

    Valid for ``t`` in ``[0, min(1, x/q)]``; values outside produce the
    algebraic extension (used by the tuner's integration grids).
    """
    if q <= 0 or x <= 0:
        raise ValueError("domain sizes must be positive")
    t = np.asarray(t, dtype=np.float64)
    denom = x / q + 1.0 - t
    out = np.divide(t, denom, out=np.zeros_like(t, dtype=np.float64),
                    where=denom > 0)
    if out.ndim == 0:
        return float(out)
    return out


def jaccard_to_containment(s, x: float, q: float):
    """``t̂_{x,q}(s) = (x/q + 1) s / (1 + s)`` — Eq. 6, vectorised over ``s``."""
    if q <= 0 or x <= 0:
        raise ValueError("domain sizes must be positive")
    s = np.asarray(s, dtype=np.float64)
    out = (x / q + 1.0) * s / (1.0 + s)
    if out.ndim == 0:
        return float(out)
    return out


def conservative_jaccard_threshold(t_star: float, u: float, q: float) -> float:
    """``s* = t* / (u/q + 1 - t*)`` — Eq. 7.

    Uses the partition upper bound ``u`` in place of the unknown ``x``;
    because ``ŝ_{x,q}(t)`` decreases in ``x``, this ``s*`` underestimates
    every in-partition exact threshold, guaranteeing zero new false
    negatives.
    """
    if not 0.0 <= t_star <= 1.0:
        raise ValueError("t_star must be in [0, 1], got %r" % t_star)
    if u <= 0 or q <= 0:
        raise ValueError("u and q must be positive")
    denom = u / q + 1.0 - t_star
    if denom <= 0:  # t* = 1 and u/q -> 0; cap at exact similarity 1.
        return 1.0
    return min(1.0, t_star / denom)


def effective_containment_threshold(t_star: float, x: float, u: float,
                                    q: float) -> float:
    """``t_x = (x + q) t* / (u + q)`` — Proposition 1.

    The containment level at which a domain of size ``x`` starts passing
    the conservative Jaccard filter built from ``u``.  ``t_x <= t*`` always;
    domains with true containment in ``[t_x, t*)`` are the false positives
    the partitioning optimisation minimises.
    """
    if u <= 0 or q <= 0 or x <= 0:
        raise ValueError("sizes must be positive")
    return (x + q) * t_star / (u + q)


def candidate_probability_containment(t, x: float, q: float, b: int, r: int):
    """``P(t | x, q, b, r)`` — Eq. 22, vectorised over ``t``.

    The probability that a domain of size ``x`` with containment ``t`` of a
    query of size ``q`` becomes a candidate under banding ``(b, r)``.
    """
    s = containment_to_jaccard(t, x, q)
    s = np.clip(np.asarray(s, dtype=np.float64), 0.0, 1.0)
    out = 1.0 - np.power(1.0 - np.power(s, r), b)
    if out.ndim == 0:
        return float(out)
    return out
