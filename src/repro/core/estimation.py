"""Containment estimation from signatures alone.

The index returns *candidates*; ranking or verifying them normally needs
the raw value sets.  When only signatures are available (the common case
at web scale — shipping 262M raw domains is exactly what the paper is
avoiding), containment can still be estimated by inverting Eq. 6:

    t̂(Q, X) = (x/q + 1) · ŝ / (1 + ŝ)

with ŝ the MinHash Jaccard estimate and ``q``, ``x`` the (known or
estimated) cardinalities.  This powers the top-k search extension
(:meth:`repro.core.ensemble.LSHEnsemble.query_top_k`) and lets pipelines
rank candidates without fetching any data.
"""

from __future__ import annotations

from repro.core.containment import jaccard_to_containment
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash

__all__ = ["estimate_containment", "rank_candidates"]


def estimate_containment(query_signature: MinHash | LeanMinHash,
                         candidate_signature: MinHash | LeanMinHash,
                         query_size: int | None = None,
                         candidate_size: int | None = None) -> float:
    """Estimate ``t(Q, X)`` from two signatures.

    Sizes default to the signatures' own cardinality estimates.  The
    result is clipped to ``[0, 1]`` (the raw transform can exceed 1 when
    the Jaccard estimate is noisy and ``x > q``).
    """
    q = query_size if query_size is not None else max(
        1, query_signature.count())
    x = candidate_size if candidate_size is not None else max(
        1, candidate_signature.count())
    if q < 1 or x < 1:
        raise ValueError("sizes must be >= 1")
    s = query_signature.jaccard(candidate_signature)
    t = jaccard_to_containment(s, float(x), float(q))
    return min(1.0, max(0.0, float(t)))


def rank_candidates(query_signature: MinHash | LeanMinHash,
                    candidates: dict,
                    query_size: int | None = None,
                    sizes: dict | None = None,
                    ) -> list[tuple[object, float]]:
    """Rank candidate keys by estimated containment, descending.

    Parameters
    ----------
    query_signature:
        MinHash of the query domain.
    candidates:
        Mapping of candidate key -> signature.
    query_size:
        ``|Q|`` if known.
    sizes:
        Optional mapping of candidate key -> exact size; missing entries
        fall back to the signature's own estimate.

    Ties break on the key's string form so the order is deterministic.
    """
    sizes = sizes or {}
    scored = [
        (key,
         estimate_containment(query_signature, sig, query_size,
                              sizes.get(key)))
        for key, sig in candidates.items()
    ]
    scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
    return scored
