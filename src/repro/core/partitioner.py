"""Domain-size partitioning strategies (Section 5.4 of the paper).

A partitioning ``Π = <[l_i, u_i)>`` splits the indexed domains by
cardinality.  Theorem 1 shows an optimal partitioning equalises the
false-positive bound ``M_i`` across partitions; Theorem 2 shows that for
power-law size distributions *equi-depth* (equal domain counts) is an
equi-``M_i`` partitioning, which is what the paper deploys.

This module provides:

* :func:`equi_depth_partitions` — the paper's production strategy.
* :func:`equi_width_partitions` — equal-size intervals; the degenerate end
  of the Figure 8 sweep.
* :func:`blended_partitions` — a convex morph between the two, driving the
  dynamic-data robustness experiment (Figure 8).
* :func:`optimal_partitions` — a direct equi-``M_i`` construction for
  *arbitrary* (non-power-law) size distributions, via binary search on the
  bound with a greedy feasibility sweep; this realises Theorem 1 without
  the power-law shortcut.

All partitionings cover ``[min size, max size + 1)`` with half-open,
contiguous intervals, so every indexed domain lands in exactly one
partition.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.cost_model import false_positive_upper_bound

__all__ = [
    "Partition",
    "equi_depth_partitions",
    "equi_width_partitions",
    "blended_partitions",
    "optimal_partitions",
    "partition_counts",
    "partition_size_std",
    "partition_depth_cv",
    "assign_partition",
    "register_partitioner",
    "resolve_partitioner",
    "partitioner_name",
    "list_partitioners",
]


@dataclass(frozen=True)
class Partition:
    """A half-open domain-size interval ``[lower, upper)``."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower < 1:
            raise ValueError("partition lower bound must be >= 1")
        if self.upper <= self.lower:
            raise ValueError(
                "partition upper bound %d must exceed lower bound %d"
                % (self.upper, self.lower)
            )

    def __contains__(self, size: int) -> bool:
        return self.lower <= size < self.upper

    @property
    def width(self) -> int:
        return self.upper - self.lower


def _validate_sizes(sizes: Sequence[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(sizes, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("sizes must be a non-empty 1-D sequence")
    if arr.min() < 1:
        raise ValueError("domain sizes must be >= 1")
    return arr


def _partitions_from_boundaries(boundaries: Sequence[int]) -> list[Partition]:
    """Turn a strictly increasing boundary list into Partition objects."""
    return [
        Partition(int(boundaries[i]), int(boundaries[i + 1]))
        for i in range(len(boundaries) - 1)
    ]


def equi_depth_partitions(sizes: Sequence[int] | np.ndarray,
                          num_partitions: int) -> list[Partition]:
    """Equal-count partitioning (Theorem 2's approximation of the optimum).

    Domains of equal size cannot be separated (partitions are size
    intervals), so boundaries snap to the nearest distinct size; the result
    may therefore have fewer than ``num_partitions`` partitions when the
    distinct sizes are few.
    """
    arr = _validate_sizes(sizes)
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    lo, hi = int(arr.min()), int(arr.max()) + 1
    if num_partitions == 1:
        return [Partition(lo, hi)]
    sorted_sizes = np.sort(arr)
    boundaries = [lo]
    for i in range(1, num_partitions):
        # The size at the i-th n-quantile of the empirical distribution.
        cut = int(sorted_sizes[min(len(sorted_sizes) - 1,
                                   (i * len(sorted_sizes)) // num_partitions)])
        if cut > boundaries[-1]:
            boundaries.append(cut)
    if boundaries[-1] >= hi:
        boundaries = boundaries[:-1]
    boundaries.append(hi)
    return _partitions_from_boundaries(boundaries)


def equi_width_partitions(sizes: Sequence[int] | np.ndarray,
                          num_partitions: int) -> list[Partition]:
    """Equal-interval partitioning of ``[min, max + 1)``."""
    arr = _validate_sizes(sizes)
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    lo, hi = int(arr.min()), int(arr.max()) + 1
    span = hi - lo
    if num_partitions >= span:
        num_partitions = span
    boundaries = [lo]
    for i in range(1, num_partitions):
        cut = lo + (i * span) // num_partitions
        if cut > boundaries[-1]:
            boundaries.append(cut)
    boundaries.append(hi)
    return _partitions_from_boundaries(boundaries)


def blended_partitions(sizes: Sequence[int] | np.ndarray,
                       num_partitions: int, alpha: float) -> list[Partition]:
    """Morph between equi-depth (``alpha = 0``) and equi-width (``alpha = 1``).

    Used by the Figure 8 experiment: as ``alpha`` grows the partition
    counts drift apart (their standard deviation rises), simulating an
    index whose data distribution has drifted away from the equi-depth
    assumption under which it was built.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    arr = _validate_sizes(sizes)
    depth = equi_depth_partitions(arr, num_partitions)
    width = equi_width_partitions(arr, num_partitions)

    def boundary_list(parts: list[Partition], n: int) -> list[int]:
        # Re-express as exactly n+1 boundaries by repeating the last upper
        # bound when snapping produced fewer partitions.
        bounds = [p.lower for p in parts] + [parts[-1].upper]
        while len(bounds) < n + 1:
            bounds.insert(-1, bounds[-2])
        return bounds

    db = boundary_list(depth, num_partitions)
    wb = boundary_list(width, num_partitions)
    lo, hi = int(arr.min()), int(arr.max()) + 1
    blended = [lo]
    for i in range(1, num_partitions):
        cut = int(round((1.0 - alpha) * db[i] + alpha * wb[i]))
        if cut > blended[-1] and cut < hi:
            blended.append(cut)
    blended.append(hi)
    return _partitions_from_boundaries(blended)


def optimal_partitions(sizes: Sequence[int] | np.ndarray,
                       num_partitions: int,
                       tolerance: float = 1e-6) -> list[Partition]:
    """Equi-``M_i`` partitioning for an arbitrary size distribution.

    Realises Theorem 1 directly: binary search on the cost target ``C``;
    a greedy left-to-right sweep checks whether the distinct sizes can be
    covered by at most ``num_partitions`` intervals each with
    ``M_i = N_i (u_i - l_i + 1) / (2 u_i) <= C``.  ``M_i`` is
    non-decreasing as an interval extends rightward (both the count and
    the width factor grow), so the greedy sweep is exact.
    """
    arr = _validate_sizes(sizes)
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    distinct, counts = np.unique(arr, return_counts=True)
    hi = int(distinct[-1]) + 1
    if num_partitions == 1:
        return [Partition(int(distinct[0]), hi)]
    if len(distinct) <= num_partitions:
        # Few distinct sizes: one tight partition per distinct size is the
        # cheapest possible cover.
        bounds = [int(distinct[0])] + [int(v) + 1 for v in distinct]
        return _partitions_from_boundaries(sorted(set(bounds)))
    cum = np.concatenate(([0], np.cumsum(counts)))

    def sweep(cost_cap: float) -> list[int] | None:
        """Greedy cover; returns boundaries or None if > n partitions.

        Every emitted partition closes *tightly* above its largest member
        (upper bound ``distinct[end] + 1``), so the bound checked while
        extending is exactly the realised partition cost.  ``M`` grows
        monotonically as a partition extends rightward, which makes
        maximal greedy extension optimal for a given cap.
        """
        boundaries = [int(distinct[0])]
        start = 0  # index into `distinct` where the current partition opens
        while start < len(distinct):
            if len(boundaries) > num_partitions:
                return None
            cur_lo = boundaries[-1]
            end = start
            while end + 1 < len(distinct):
                n_in = int(cum[end + 2] - cum[start])
                m = false_positive_upper_bound(
                    n_in, cur_lo, int(distinct[end + 1]) + 1
                )
                if m > cost_cap:
                    break
                end += 1
            boundaries.append(int(distinct[end]) + 1)
            start = end + 1
        return boundaries if len(boundaries) - 1 <= num_partitions else None

    # Bracket the optimum: the whole-range cost is always feasible.
    hi_cost = false_positive_upper_bound(int(arr.size), int(distinct[0]), hi)
    lo_cost = 0.0
    best = sweep(hi_cost)
    assert best is not None
    for _ in range(64):
        if hi_cost - lo_cost <= tolerance * max(1.0, hi_cost):
            break
        mid = 0.5 * (lo_cost + hi_cost)
        attempt = sweep(mid)
        if attempt is None:
            lo_cost = mid
        else:
            hi_cost = mid
            best = attempt
    return _partitions_from_boundaries(best)


def partition_counts(sizes: Sequence[int] | np.ndarray,
                     partitions: Sequence[Partition]) -> list[int]:
    """Number of domains falling in each partition."""
    arr = _validate_sizes(sizes)
    return [
        int(np.count_nonzero((arr >= p.lower) & (arr < p.upper)))
        for p in partitions
    ]


def partition_size_std(sizes: Sequence[int] | np.ndarray,
                       partitions: Sequence[Partition]) -> float:
    """Standard deviation of partition counts — Figure 8's x-axis."""
    counts = partition_counts(sizes, partitions)
    return float(np.std(counts))


def partition_depth_cv(counts: Sequence[int]) -> float:
    """Coefficient of variation of partition depths (counts).

    The scale-free form of Figure 8's x-axis: 0 for a perfectly
    equi-depth partitioning and growing as the per-partition counts
    drift apart, independent of the corpus size.  This is the
    partition-depth-imbalance component of the dynamic index's drift
    monitor (:meth:`~repro.core.ensemble.LSHEnsemble.drift_stats`).
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    mean = float(arr.mean())
    if mean <= 0.0:
        return 0.0
    return float(arr.std() / mean)


# --------------------------------------------------------------------- #
# Partitioner registry
# --------------------------------------------------------------------- #
#
# Persistence records the partitioning strategy an index was configured
# with, by registry name, so a loaded index is faithful to the saved one
# instead of silently reverting to the equi-depth default.

_PARTITIONERS: dict[str, object] = {}


def register_partitioner(name: str, partitioner) -> None:
    """Register a ``(sizes, n) -> list[Partition]`` callable under
    ``name`` for persistence.

    Re-registering a name with a different callable raises — snapshot
    headers reference partitioners by name, so names must stay
    unambiguous within a process.
    """
    existing = _PARTITIONERS.get(name)
    if existing is not None and existing is not partitioner:
        raise ValueError("partitioner name %r is already registered" % name)
    _PARTITIONERS[name] = partitioner


def resolve_partitioner(name: str):
    """The partitioner registered under ``name`` (KeyError when unknown)."""
    try:
        return _PARTITIONERS[name]
    except KeyError:
        raise KeyError(
            "unknown partitioner %r; registered partitioners: %s"
            % (name, sorted(_PARTITIONERS))
        ) from None


def partitioner_name(partitioner) -> str | None:
    """The registered name of ``partitioner``, or None when unregistered."""
    for name, registered in _PARTITIONERS.items():
        if registered is partitioner:
            return name
    return None


def list_partitioners() -> list[str]:
    """Names of all registered partitioners, sorted."""
    return sorted(_PARTITIONERS)


register_partitioner("equi_depth", equi_depth_partitions)
register_partitioner("equi_width", equi_width_partitions)
register_partitioner("optimal", optimal_partitions)


def assign_partition(size: int, partitions: Sequence[Partition]) -> int:
    """Index of the partition containing ``size`` (ValueError if none)."""
    for i, p in enumerate(partitions):
        if size in p:
            return i
    raise ValueError(
        "size %d is outside all partitions [%d, %d)"
        % (size, partitions[0].lower, partitions[-1].upper)
    )
