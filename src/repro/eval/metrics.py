"""Accuracy metrics with the paper's conventions (Section 6.1, Eq. 27-28).

Set-overlap precision and recall against exact ground truth, plus the
F-beta score with the paper's two betas (1 and 0.5 — the precision-biased
variant that is "fairer" to the recall-biased ensemble).

Averaging conventions (taken verbatim from the paper):

* an *empty result set* has precision 1.0, but such queries are **excluded**
  when averaging precision;
* a query with empty ground truth has recall 1.0 (there was nothing to
  find) — the natural completion the paper leaves implicit.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

__all__ = [
    "precision",
    "recall",
    "f_beta",
    "QueryEvaluation",
    "evaluate_query",
    "MeanAccuracy",
    "aggregate",
]


def precision(result: set, truth: set) -> float:
    """``|A ∩ T| / |A|``; empty results score 1.0 by convention."""
    if not result:
        return 1.0
    return len(result & truth) / len(result)


def recall(result: set, truth: set) -> float:
    """``|A ∩ T| / |T|``; empty ground truth scores 1.0 by convention."""
    if not truth:
        return 1.0
    return len(result & truth) / len(truth)


def f_beta(prec: float, rec: float, beta: float = 1.0) -> float:
    """Eq. 28; 0.0 when both inputs are 0 (the limit of the formula)."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    denom = beta * beta * prec + rec
    if denom == 0.0:
        return 0.0
    return (1.0 + beta * beta) * prec * rec / denom


@dataclass(frozen=True)
class QueryEvaluation:
    """Scores for one query at one threshold."""

    precision: float
    recall: float
    empty_result: bool
    empty_truth: bool

    @property
    def f1(self) -> float:
        return f_beta(self.precision, self.recall, 1.0)

    @property
    def f05(self) -> float:
        return f_beta(self.precision, self.recall, 0.5)


def evaluate_query(result: set, truth: set) -> QueryEvaluation:
    """Score one query's result set against its ground truth."""
    return QueryEvaluation(
        precision=precision(result, truth),
        recall=recall(result, truth),
        empty_result=not result,
        empty_truth=not truth,
    )


@dataclass(frozen=True)
class MeanAccuracy:
    """Averages over a batch of queries, paper conventions applied."""

    precision: float
    recall: float
    f1: float
    f05: float
    num_queries: int
    num_empty_results: int

    def as_row(self) -> tuple[float, float, float, float]:
        return (self.precision, self.recall, self.f1, self.f05)


def aggregate(evaluations: Sequence[QueryEvaluation]) -> MeanAccuracy:
    """Mean accuracy over queries.

    Precision is averaged over queries with non-empty results only (the
    paper's convention for the Asym baseline's mostly-empty answers);
    recall, F1 and F0.5 average over all queries.  When *every* result is
    empty, precision falls back to 1.0 (all empty answers are vacuously
    precise).
    """
    if not evaluations:
        raise ValueError("cannot aggregate zero evaluations")
    non_empty = [e for e in evaluations if not e.empty_result]
    if non_empty:
        mean_prec = sum(e.precision for e in non_empty) / len(non_empty)
    else:
        mean_prec = 1.0
    mean_rec = sum(e.recall for e in evaluations) / len(evaluations)
    mean_f1 = sum(e.f1 for e in evaluations) / len(evaluations)
    mean_f05 = sum(e.f05 for e in evaluations) / len(evaluations)
    return MeanAccuracy(
        precision=mean_prec,
        recall=mean_rec,
        f1=mean_f1,
        f05=mean_f05,
        num_queries=len(evaluations),
        num_empty_results=sum(1 for e in evaluations if e.empty_result),
    )
