"""Experiment harness: build indexes, sweep thresholds, score accuracy.

This is the machinery behind every accuracy figure (4, 5, 6, 7, 8): take a
corpus, sample queries, compute exact ground truth once per query via the
inverted index, then evaluate each method's candidate sets across a
containment-threshold sweep.

Methods are supplied as factories returning any object with the common
index protocol::

    index.index(entries)                          # bulk build
    index.query(signature, size, threshold) -> set

which :class:`~repro.core.ensemble.LSHEnsemble` (the ensemble *and* the
single-partition baseline) and
:class:`~repro.asym.index.AsymmetricMinHashLSH` both satisfy.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Hashable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.asym.index import AsymmetricMinHashLSH
from repro.core.ensemble import LSHEnsemble
from repro.datagen.corpus import DomainCorpus
from repro.eval.metrics import MeanAccuracy, aggregate, evaluate_query
from repro.exact.inverted import InvertedIndex
from repro.minhash.lean import LeanMinHash

__all__ = [
    "AccuracyExperiment",
    "AccuracyResults",
    "standard_methods",
    "default_thresholds",
]


def default_thresholds(step: float = 0.1) -> list[float]:
    """The paper's sweep: thresholds from ``step`` to 1.0 inclusive."""
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")
    count = int(round(1.0 / step))
    return [round(step * i, 10) for i in range(1, count + 1)]


def standard_methods(num_perm: int = 256,
                     partition_counts: Sequence[int] = (8, 16, 32),
                     ) -> dict[str, Callable[[], object]]:
    """The paper's five contenders, as index factories.

    ``Baseline`` is MinHash LSH run through the same dynamic-LSH
    containment machinery with a single partition, exactly as Section 6.1
    describes the fair-comparison setup.
    """
    methods: dict[str, Callable[[], object]] = {
        "Baseline": lambda: LSHEnsemble(num_perm=num_perm, num_partitions=1),
        "Asym": lambda: AsymmetricMinHashLSH(num_perm=num_perm),
    }
    for n in partition_counts:
        methods["LSH Ensemble (%d)" % n] = (
            lambda n=n: LSHEnsemble(num_perm=num_perm, num_partitions=n)
        )
    return methods


@dataclass
class AccuracyResults:
    """``method -> threshold -> MeanAccuracy`` plus build/query timings."""

    table: dict[str, dict[float, MeanAccuracy]] = field(default_factory=dict)
    build_seconds: dict[str, float] = field(default_factory=dict)
    query_seconds: dict[str, float] = field(default_factory=dict)

    def methods(self) -> list[str]:
        return list(self.table)

    def thresholds(self) -> list[float]:
        first = next(iter(self.table.values()), {})
        return sorted(first)

    def series(self, method: str, metric: str) -> list[tuple[float, float]]:
        """``(threshold, value)`` pairs for one method and metric name."""
        if metric not in ("precision", "recall", "f1", "f05"):
            raise ValueError("unknown metric %r" % metric)
        by_threshold = self.table[method]
        return [
            (t, getattr(by_threshold[t], metric))
            for t in sorted(by_threshold)
        ]


class AccuracyExperiment:
    """One corpus + one query sample, reusable across method sets.

    Signature construction and exact scoring are done once in
    :meth:`prepare`; each :meth:`run` then measures only the methods under
    test.
    """

    def __init__(self, corpus: DomainCorpus, query_keys: Sequence[Hashable],
                 num_perm: int = 256, seed: int = 1) -> None:
        if not query_keys:
            raise ValueError("need at least one query key")
        missing = [k for k in query_keys if k not in corpus]
        if missing:
            raise ValueError(
                "query keys %r are not in the corpus" % missing[:3]
            )
        self.corpus = corpus
        self.query_keys = list(query_keys)
        self.num_perm = int(num_perm)
        self.seed = int(seed)
        self._signatures: dict[Hashable, LeanMinHash] | None = None
        self._exact_scores: dict[Hashable, dict[Hashable, float]] | None = None

    # ------------------------------------------------------------------ #
    # One-time preparation
    # ------------------------------------------------------------------ #

    def prepare(self) -> None:
        """Build signatures and exact containment scores (idempotent)."""
        if self._signatures is None:
            self._signatures = self.corpus.signatures(self.num_perm,
                                                      self.seed)
        if self._exact_scores is None:
            inverted = InvertedIndex.from_domains(self.corpus)
            self._exact_scores = {
                key: inverted.containment_scores(self.corpus[key])
                for key in self.query_keys
            }

    @property
    def signatures(self) -> dict[Hashable, LeanMinHash]:
        self.prepare()
        assert self._signatures is not None
        return self._signatures

    def ground_truth(self, query_key: Hashable, threshold: float) -> set:
        """Exact ``{X : t(Q, X) >= t*}`` for one sampled query."""
        self.prepare()
        assert self._exact_scores is not None
        if threshold == 0.0:
            return set(self.corpus)
        scores = self._exact_scores[query_key]
        return {key for key, t in scores.items() if t >= threshold}

    def entries(self) -> list[tuple[Hashable, LeanMinHash, int]]:
        """Index-builder input for the whole corpus."""
        sigs = self.signatures
        return [(key, sigs[key], self.corpus.size_of(key))
                for key in self.corpus]

    # ------------------------------------------------------------------ #
    # Method evaluation
    # ------------------------------------------------------------------ #

    def run(self, methods: Mapping[str, Callable[[], object]],
            thresholds: Sequence[float] | None = None) -> AccuracyResults:
        """Evaluate every method across the threshold sweep."""
        self.prepare()
        if thresholds is None:
            thresholds = default_thresholds()
        results = AccuracyResults()
        entries = self.entries()
        sigs = self.signatures
        for name, factory in methods.items():
            index = factory()
            t0 = time.perf_counter()
            index.index(entries)
            results.build_seconds[name] = time.perf_counter() - t0
            per_threshold: dict[float, MeanAccuracy] = {}
            t0 = time.perf_counter()
            for threshold in thresholds:
                evaluations = []
                for key in self.query_keys:
                    result = index.query(sigs[key],
                                         size=self.corpus.size_of(key),
                                         threshold=threshold)
                    truth = self.ground_truth(key, threshold)
                    evaluations.append(evaluate_query(result, truth))
                per_threshold[float(threshold)] = aggregate(evaluations)
            results.query_seconds[name] = time.perf_counter() - t0
            results.table[name] = per_threshold
        return results
