"""Plain-text report rendering for experiment output.

Benchmarks print the same rows/series the paper's tables and figures show;
these helpers keep that formatting in one place so every bench reads the
same way.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_accuracy_results", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """A fixed-width ASCII table; floats rendered with 4 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return "%.4f" % v
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width %d != header width %d"
                             % (len(row), len(headers)))
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_accuracy_results(results, metric: str,
                            title: str | None = None) -> str:
    """One metric of an :class:`AccuracyResults` as threshold-by-method rows."""
    methods = results.methods()
    thresholds = results.thresholds()
    headers = ["t*"] + methods
    rows = []
    for t in thresholds:
        row: list[object] = ["%.2f" % t]
        for m in methods:
            row.append(getattr(results.table[m][t], metric))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_series(pairs: Sequence[tuple[object, object]], x_label: str,
                  y_label: str, title: str | None = None) -> str:
    """A two-column series (one figure line) as an ASCII table."""
    return format_table([x_label, y_label], list(pairs), title=title)
