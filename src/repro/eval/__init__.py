"""Evaluation: metrics (Eq. 27-28), experiment harness, report rendering."""

from repro.eval.harness import (
    AccuracyExperiment,
    AccuracyResults,
    default_thresholds,
    standard_methods,
)
from repro.eval.metrics import (
    MeanAccuracy,
    QueryEvaluation,
    aggregate,
    evaluate_query,
    f_beta,
    precision,
    recall,
)
from repro.eval.reports import (
    format_accuracy_results,
    format_series,
    format_table,
)

__all__ = [
    "AccuracyExperiment",
    "AccuracyResults",
    "standard_methods",
    "default_thresholds",
    "precision",
    "recall",
    "f_beta",
    "QueryEvaluation",
    "evaluate_query",
    "MeanAccuracy",
    "aggregate",
    "format_table",
    "format_accuracy_results",
    "format_series",
]
