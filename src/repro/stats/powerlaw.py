"""Power-law diagnostics for domain-size distributions (Figure 1).

Two jobs: verify that generated corpora actually exhibit the power-law
shape the paper's theory assumes (Theorem 2), and regenerate the Figure 1
histograms (log2-binned size-frequency series).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["fit_alpha", "log2_histogram", "is_power_law_like"]


def fit_alpha(sizes: Sequence[int] | np.ndarray, min_size: int | None = None,
              ) -> float:
    """Maximum-likelihood exponent of a power law ``f(x) ∝ x^-alpha``.

    The continuous-approximation Hill estimator
    ``alpha = 1 + n / sum(ln(x / x_min))``, with ``x_min`` defaulting to
    the smallest observed size.
    """
    arr = np.asarray(sizes, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("sizes must be non-empty")
    if min_size is None:
        min_size = float(arr.min())
    if min_size <= 0:
        raise ValueError("min_size must be positive")
    tail = arr[arr >= min_size]
    if tail.size == 0:
        raise ValueError("no sizes at or above min_size")
    logs = np.log(tail / min_size)
    total = logs.sum()
    if total == 0.0:
        raise ValueError("degenerate sizes: all equal to min_size")
    return float(1.0 + tail.size / total)


def log2_histogram(sizes: Sequence[int] | np.ndarray,
                   ) -> list[tuple[int, int]]:
    """``(2^k, count)`` pairs: the Figure 1 series.

    Bucket ``k`` counts domains with ``2^k <= size < 2^(k+1)``; empty
    buckets inside the observed range are included with count 0 so the
    series plots cleanly on log-log axes.
    """
    arr = np.asarray(sizes, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("sizes must be non-empty")
    if arr.min() < 1:
        raise ValueError("sizes must be >= 1")
    exponents = np.floor(np.log2(arr)).astype(np.int64)
    lo, hi = int(exponents.min()), int(exponents.max())
    counts = {k: 0 for k in range(lo, hi + 1)}
    for e in exponents:
        counts[int(e)] += 1
    return [(1 << k, counts[k]) for k in range(lo, hi + 1)]


def is_power_law_like(sizes: Sequence[int] | np.ndarray,
                      min_r_squared: float = 0.85) -> bool:
    """Crude goodness test: log-log histogram close to linear.

    Fits a line to the non-empty log2 histogram buckets in log-log space
    and checks the coefficient of determination.  Used by tests and the
    corpus generator's self-checks, not by the index itself.
    """
    hist = [(b, c) for b, c in log2_histogram(sizes) if c > 0]
    if len(hist) < 3:
        return False
    xs = np.log2([b for b, _ in hist])
    ys = np.log2([c for _, c in hist])
    slope, intercept = np.polyfit(xs, ys, 1)
    pred = slope * xs + intercept
    ss_res = float(np.sum((ys - pred) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    if ss_tot == 0.0:
        return False
    return 1.0 - ss_res / ss_tot >= min_r_squared and slope < 0
