"""Moment statistics — the skewness measure of Eq. 29.

The Figure 5 experiment quantifies domain-size skew with the standardised
third moment ``skewness = m3 / m2^(3/2)`` (CRC Standard Probability and
Statistics Tables, 2.2.24.1), where ``m2`` and ``m3`` are the second and
third *central* moments of the size distribution.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["central_moment", "skewness", "skewness_from_sums"]


def central_moment(values: Sequence[float] | np.ndarray, order: int) -> float:
    """The ``order``-th central moment ``m_k = mean((x - mean(x))^k)``."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    if order < 1:
        raise ValueError("order must be >= 1")
    return float(np.mean((arr - arr.mean()) ** order))


def skewness(values: Sequence[float] | np.ndarray) -> float:
    """``m3 / m2^(3/2)`` — Eq. 29.

    Zero for symmetric data, positive when mass concentrates on the left
    with a long right tail (the power-law regime); degenerate constant
    data yields 0 by convention.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    m2 = central_moment(arr, 2)
    if m2 == 0.0:
        return 0.0
    m3 = central_moment(arr, 3)
    return float(m3 / m2 ** 1.5)


def skewness_from_sums(n: int, s1: int, s2: int, s3: int) -> float:
    """:func:`skewness` from the raw power sums ``Σx``, ``Σx²``, ``Σx³``.

    The dynamic index's drift monitor keeps these sums incrementally
    (O(1) exact integer updates per insert/remove) so the live size
    distribution's skewness is available at every mutation without an
    O(N) pass.  Uses the standard raw→central moment identities::

        m2 = s2/n − mean²
        m3 = s3/n − 3·mean·s2/n + 2·mean³

    Degenerate inputs (``n <= 0`` or zero variance, including the tiny
    negative ``m2`` float rounding can produce) yield 0 by the same
    convention as :func:`skewness`.
    """
    if n <= 0:
        return 0.0
    mean = s1 / n
    m2 = s2 / n - mean * mean
    if m2 <= 0.0:
        return 0.0
    m3 = s3 / n - 3.0 * mean * (s2 / n) + 2.0 * mean ** 3
    return float(m3 / m2 ** 1.5)
