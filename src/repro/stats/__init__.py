"""Distribution statistics: skewness (Eq. 29) and power-law diagnostics."""

from repro.stats.powerlaw import fit_alpha, is_power_law_like, log2_histogram
from repro.stats.skewness import central_moment, skewness

__all__ = [
    "skewness",
    "central_moment",
    "fit_alpha",
    "log2_histogram",
    "is_power_law_like",
]
