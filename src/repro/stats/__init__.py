"""Distribution statistics: skewness (Eq. 29) and power-law diagnostics."""

from repro.stats.powerlaw import fit_alpha, is_power_law_like, log2_histogram
from repro.stats.skewness import central_moment, skewness, skewness_from_sums

__all__ = [
    "skewness",
    "central_moment",
    "skewness_from_sums",
    "fit_alpha",
    "log2_histogram",
    "is_power_law_like",
]
