"""Project-specific static analysis: the invariant linter.

PRs 3-6 made the index mutable-while-serving, multi-threaded, and
multi-process.  Correctness now rests on conventions the type system
cannot see: ``*_locked``-suffix methods only run with the owning lock
held, ``mutation_epoch`` is captured atomically with the overlay it
describes, schedules draw only from seeded ``np.random.default_rng``
streams, and process-pool payloads stay picklable.  This package makes
those conventions machine-checked — an AST pass over the repo's own
source, run as ``python -m repro.analysis`` (or ``python -m repro.cli
lint``) and as a blocking CI job.

Rules
-----

====== ==============================================================
RL001  Lock discipline: calls to ``*_locked`` methods and writes to
       the guarded mutable index fields (``_mutation_epoch``,
       ``_delta``, ``_tombstones``, ``_partition_max_size``) must
       happen inside ``with ..._lock`` / ``with ....locked()`` or
       another ``*_locked`` method; reaching into another object's
       private ``._lock`` is always flagged — use the public
       ``locked()`` accessor.
RL002  Blocking-in-async: ``time.sleep``, file/socket I/O, bare
       ``Lock.acquire`` and synchronous ``ProcPool.run`` calls inside
       ``async def`` bodies stall the event loop.
RL003  Determinism: bare ``random.*``, legacy ``np.random.*`` globals,
       unseeded ``default_rng()``/``RandomState()`` and
       ``time.time()`` in the reproduction-critical packages
       (``core/``, ``lsh/``, ``minhash/``, ``kernels/``,
       ``loadgen/schedule.py``).
RL004  IPC pickle-safety: payloads handed to a process pool (or sent
       down a pipe connection) must not close over lambdas, locks,
       mmaps, or open files.
RL005  Epoch capture: code that reads ``mutation_epoch`` *and* takes
       an overlay snapshot must do both under one lock acquisition —
       two separate reads can pair a stale epoch with fresh tiers.
RL006  Kernel-registry routing: direct ``fnv1a_lanes`` calls anywhere
       in ``repro/`` (outside ``repro/kernels/``), and raw
       ``searchsorted``/``bisect`` probe loops in ``lsh/``/``forest/``,
       bypass ``--kernel``/``REPRO_KERNEL`` selection — route through
       ``kernel.band_hash`` / ``kernel.probe``.
====== ==============================================================

Findings can be suppressed per line with ``# repro-lint:
disable=RL001`` (comma-separated ids, or ``all``), or grandfathered in
the committed baseline file (``.repro-lint-baseline``; regenerate with
``--write-baseline``).
"""

from repro.analysis.engine import (
    Finding,
    all_checkers,
    main,
    run_paths,
)

__all__ = ["Finding", "all_checkers", "main", "run_paths"]
