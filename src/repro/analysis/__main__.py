"""``python -m repro.analysis`` — run the invariant linter."""

import sys

from repro.analysis.engine import main

if __name__ == "__main__":
    sys.exit(main())
