"""RL003 — determinism of the reproduction-critical packages.

The accuracy harnesses compare measured precision/recall against the
paper's Figures 4-7; those comparisons are only meaningful when the
hashing, partitioning, and load schedules are bit-reproducible run to
run (the LSH survey in PAPERS.md makes the same point about seeded
hashing).  Inside ``core/``, ``lsh/``, ``minhash/``, ``kernels/`` and
``loadgen/schedule.py`` this rule therefore flags:

* any use of the stdlib ``random`` module's global-state API
  (``random.random()``, ``from random import randint``, ...) —
  ``random.Random(seed)`` instances are fine;
* numpy's legacy global generator (``np.random.rand``,
  ``np.random.seed``, ...), plus *unseeded* ``default_rng()`` /
  ``RandomState()`` constructions;
* wall-clock reads ``time.time()`` / ``time.time_ns()`` — schedules
  must be derived from the profile, not from when the run started.
  (``time.perf_counter()`` stays allowed: measuring a duration does
  not influence any result.)
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import (
    Checker,
    ScopeVisitor,
    dotted,
    import_aliases,
    resolve_dotted,
)

__all__ = ["DeterminismChecker"]

RULE = "RL003"

#: np.random attributes that only *construct* explicitly-seeded state.
NP_RANDOM_TYPES = frozenset({
    "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: np.random constructors that are fine *when given a seed*.
NP_RANDOM_SEEDED = frozenset({"default_rng", "RandomState"})

WALL_CLOCK = frozenset({"time.time", "time.time_ns"})


def _has_seed(node: ast.Call) -> bool:
    return bool(node.args) or any(kw.arg == "seed" for kw in node.keywords)


class _Visitor(ScopeVisitor):

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._modules: dict[str, str] = {}
        self._names: dict[str, str] = {}

    def visit_Module(self, node: ast.Module) -> None:
        self._modules, self._names = import_aliases(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        path = resolve_dotted(dotted(node.func), self._modules,
                              self._names)
        if path is not None:
            self._check_path(node, path)
        self.generic_visit(node)

    def _check_path(self, node: ast.Call, path: str) -> None:
        if path in WALL_CLOCK:
            self.report(
                node, RULE,
                "wall-clock read %s() in reproduction-critical code; "
                "derive timing from the seeded schedule (or use "
                "perf_counter for duration measurement)" % path)
            return
        module, _, attr = path.rpartition(".")
        if module == "random":
            if attr == "Random" and _has_seed(node):
                return  # explicitly seeded instance
            self.report(
                node, RULE,
                "stdlib random.%s uses hidden global state; draw from "
                "a seeded np.random.default_rng stream instead" % attr)
        elif module == "numpy.random":
            if attr in NP_RANDOM_TYPES:
                return
            if attr in NP_RANDOM_SEEDED:
                if not _has_seed(node):
                    self.report(
                        node, RULE,
                        "unseeded np.random.%s() is entropy-seeded; "
                        "pass an explicit seed so runs are "
                        "reproducible" % attr)
                return
            self.report(
                node, RULE,
                "legacy global np.random.%s; use a seeded "
                "np.random.default_rng generator instead" % attr)


class DeterminismChecker(Checker):
    rule_id = RULE
    title = "seeded randomness / no wall-clock in core paths"
    scope = ("repro/core/", "repro/lsh/", "repro/minhash/",
             "repro/kernels/", "loadgen/schedule.py")
    visitor_class = _Visitor
