"""RL006 — hot-loop calls must route through the kernel registry.

PR 8 moved the three query hot loops (band hashing, sorted-prefix
probing, candidate merging) behind :mod:`repro.kernels` so backends can
be swapped without touching callers, and so the bit-identical contract
is enforced in exactly one place.  A caller that hashes with
``fnv1a_lanes`` directly, or binary-searches a probe array with
``np.searchsorted`` / ``bisect`` in the probe-path packages, silently
pins itself to one backend: the ``--kernel`` flag, the ``REPRO_KERNEL``
environment variable, and the snapshot-header adoption all stop
applying to that code path, and a future compiled backend cannot
accelerate it.

Inside ``repro/`` (excluding ``repro/kernels/`` itself, which *is* the
registry) this rule flags:

* any call to ``fnv1a_lanes`` — resolved through import aliases, so the
  back-compat re-export via ``repro.lsh.storage`` is caught too; use
  ``kernel.band_hash`` instead;
* ``searchsorted`` / ``bisect.bisect*`` calls inside the probe-path
  packages (``repro/lsh/``, ``repro/forest/``) — use ``kernel.probe``.
  Other packages keep ``searchsorted`` for legitimate non-probe uses
  (partition routing, CDF sampling).
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import (
    Checker,
    ScopeVisitor,
    dotted,
    import_aliases,
    resolve_dotted,
)

__all__ = ["KernelBypassChecker"]

RULE = "RL006"

#: Canonical origins of the band-hash primitive (every public alias).
FNV1A_ORIGINS = frozenset({
    "repro.kernels.fnv1a_lanes",
    "repro.kernels.numpy_impl.fnv1a_lanes",
    "repro.lsh.storage.fnv1a_lanes",
})

#: Packages whose binary searches are, by construction, probe loops.
PROBE_PATHS = ("repro/lsh/", "repro/forest/")

BISECT_CALLS = frozenset({
    "bisect.bisect", "bisect.bisect_left", "bisect.bisect_right",
})


class _Visitor(ScopeVisitor):

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._modules: dict[str, str] = {}
        self._names: dict[str, str] = {}
        self._probe_path = any(fragment in ctx.path
                               for fragment in PROBE_PATHS)

    def visit_Module(self, node: ast.Module) -> None:
        self._modules, self._names = import_aliases(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        path = resolve_dotted(dotted(node.func), self._modules,
                              self._names)
        if path is not None:
            self._check_path(node, path)
        self.generic_visit(node)

    def _check_path(self, node: ast.Call, path: str) -> None:
        if path in FNV1A_ORIGINS or path.endswith(".fnv1a_lanes") \
                or path == "fnv1a_lanes":
            self.report(
                node, RULE,
                "direct fnv1a_lanes call bypasses the kernel registry; "
                "route band hashing through kernel.band_hash so "
                "--kernel/REPRO_KERNEL selection applies")
            return
        if self._probe_path:
            if path in BISECT_CALLS or path.endswith(".searchsorted") \
                    or path == "numpy.searchsorted":
                self.report(
                    node, RULE,
                    "direct %s probe loop in a probe-path package "
                    "bypasses the kernel registry; use kernel.probe"
                    % path.rpartition(".")[2])


class KernelBypassChecker(Checker):
    rule_id = RULE
    title = "hot loops route through the kernel registry"
    scope = ("repro/",)
    visitor_class = _Visitor

    def applies_to(self, path: str) -> bool:
        if "repro/kernels/" in path:
            return False  # the registry's own implementations
        return super().applies_to(path)
