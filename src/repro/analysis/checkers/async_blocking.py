"""RL002 — blocking calls inside ``async def`` bodies.

The serving layer (:mod:`repro.serve`) runs on a single asyncio event
loop; one synchronous ``time.sleep``, file read, bare ``Lock.acquire``
or in-line ``ProcPool.run`` stalls *every* in-flight request for its
duration — the failure mode is invisible under light load and
catastrophic under the coalescer's fan-in.  Blocking work belongs on
the coalescer's worker thread or behind
``loop.run_in_executor(...)``.

Only statements directly inside an ``async def`` are flagged; a nested
synchronous ``def`` is a callback whose execution context the linter
cannot know.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import (
    Checker,
    ScopeVisitor,
    dotted,
    import_aliases,
    resolve_dotted,
)

__all__ = ["AsyncBlockingChecker"]

RULE = "RL002"

#: Canonical dotted call paths that block the calling thread.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.create_connection", "socket.socket", "socket.getaddrinfo",
    "subprocess.run", "subprocess.check_output", "subprocess.check_call",
    "subprocess.call", "os.system",
    "urllib.request.urlopen",
})

#: Attribute methods that are file I/O regardless of receiver type.
BLOCKING_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


class _Visitor(ScopeVisitor):

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._modules: dict[str, str] = {}
        self._names: dict[str, str] = {}

    def visit_Module(self, node: ast.Module) -> None:
        self._modules, self._names = import_aliases(node)
        self.generic_visit(node)

    def _in_async(self) -> bool:
        return bool(self.func_stack) and isinstance(
            self.func_stack[-1], ast.AsyncFunctionDef)

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_async():
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        coro = self.func_stack[-1].name
        if isinstance(func, ast.Name):
            resolved = self._names.get(func.id, func.id)
            if func.id == "open" or resolved in BLOCKING_CALLS:
                self.report(
                    node, RULE,
                    "blocking call %s(...) inside `async def %s`; "
                    "use an executor (loop.run_in_executor) or the "
                    "asyncio equivalent" % (func.id, coro))
            return
        path = resolve_dotted(dotted(func), self._modules, self._names)
        if path in BLOCKING_CALLS:
            self.report(
                node, RULE,
                "blocking call %s(...) inside `async def %s`; use an "
                "executor (loop.run_in_executor) or the asyncio "
                "equivalent" % (path, coro))
            return
        if isinstance(func, ast.Attribute):
            receiver = (dotted(func.value) or "").lower()
            if func.attr == "acquire" and "lock" in receiver:
                self.report(
                    node, RULE,
                    "synchronous %s.acquire() inside `async def %s` "
                    "can deadlock the event loop; restructure around "
                    "the coalescer's worker thread" % (
                        dotted(func.value), coro))
            elif func.attr == "run" and "pool" in receiver:
                self.report(
                    node, RULE,
                    "synchronous %s.run(...) inside `async def %s` "
                    "blocks the loop for the whole scatter-gather; "
                    "dispatch via run_in_executor" % (
                        dotted(func.value), coro))
            elif func.attr in BLOCKING_METHODS:
                self.report(
                    node, RULE,
                    "file I/O %s.%s(...) inside `async def %s` blocks "
                    "the event loop" % (
                        dotted(func.value) or "<expr>", func.attr, coro))


class AsyncBlockingChecker(Checker):
    rule_id = RULE
    title = "blocking calls in async functions"
    visitor_class = _Visitor
