"""RL005 — atomic (mutation_epoch, overlay) capture.

The process-pool executor labels every task with the
``mutation_epoch`` *and* ships the overlay (tombstones + delta tier)
that epoch describes; workers re-apply the overlay whenever the epoch
moves.  That protocol is only sound when the epoch and the overlay are
read under **one** lock acquisition — captured as two separate reads,
a mutator can slip between them and pair a stale epoch with fresh
tiers (or vice versa), making workers serve answers for an epoch that
never existed.

The rule: any function that both reads ``mutation_epoch`` (or the
private ``_mutation_epoch``) and takes an overlay snapshot
(``overlay_snapshot()`` / ``_overlay_snapshot()``) must do both inside
the *same* lexical ``with ..._lock:`` / ``with ....locked():`` block.
``epoch_snapshot()`` — the public accessor returning the pair under
one acquisition — is always fine.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import Checker, ScopeVisitor, dotted

__all__ = ["EpochCaptureChecker"]

RULE = "RL005"

EPOCH_ATTRS = frozenset({"mutation_epoch", "_mutation_epoch"})
OVERLAY_CALLS = frozenset({"overlay_snapshot", "_overlay_snapshot"})


class _Visitor(ScopeVisitor):

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        # Per-function event lists: (node, innermost lock `with` node).
        self._frames: list[tuple[list, list]] = []

    def enter_function(self, node) -> None:
        self._frames.append(([], []))

    def leave_function(self, node) -> None:
        epochs, overlays = self._frames.pop()
        if not epochs or not overlays:
            return
        for overlay_node, overlay_lock in overlays:
            if overlay_lock is not None and any(
                    lock is overlay_lock for _, lock in epochs):
                continue
            self.report(
                overlay_node, RULE,
                "overlay snapshot and mutation_epoch read in `%s` are "
                "not under one lock acquisition; a mutator can slip "
                "between them — capture both in a single `with "
                "....locked():` block (or use epoch_snapshot())"
                % node.name)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (node.attr in EPOCH_ATTRS and isinstance(node.ctx, ast.Load)
                and self._frames):
            self._frames[-1][0].append((node, self.innermost_lock()))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr in OVERLAY_CALLS
                and self._frames):
            self._frames[-1][1].append((node, self.innermost_lock()))
        self.generic_visit(node)


class EpochCaptureChecker(Checker):
    rule_id = RULE
    title = "epoch + overlay captured under one lock"
    visitor_class = _Visitor
