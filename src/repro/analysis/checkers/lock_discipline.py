"""RL001 — lock discipline for the mutable index state.

The concurrency model of :class:`repro.core.ensemble.LSHEnsemble`
(PRs 3-5) rests on two conventions:

* every method whose name ends in ``_locked`` runs with the owning
  lock already held, so it may touch guarded state freely — and must
  only be *called* from a lock context or from another ``*_locked``
  method;
* the guarded mutable fields — ``_mutation_epoch``, ``_delta``,
  ``_tombstones``, ``_partition_max_size`` — are only written inside
  ``with ..._lock`` / ``with ....locked()`` blocks (or ``__init__``,
  where the object is not shared yet).

Additionally, reaching into *another object's* private ``._lock`` is
always flagged: cross-module callers must go through the public
``locked()`` accessor, which names the dependency and survives
refactors of the lock's storage.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import Checker, ScopeVisitor, dotted

__all__ = ["LockDisciplineChecker"]

RULE = "RL001"

#: Fields of the mutable index whose writes must be lock-serialised.
GUARDED_FIELDS = frozenset({
    "_mutation_epoch", "_delta", "_tombstones", "_partition_max_size",
})

#: Method names that mutate their receiver in place; a call like
#: ``self._tombstones.add(k)`` is a write to the guarded field.
MUTATOR_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "pop", "popitem",
    "remove", "setdefault", "update",
})


class _Visitor(ScopeVisitor):

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "_lock":
            receiver = dotted(node.value)
            if receiver is not None and receiver not in ("self", "cls"):
                self.report(
                    node, RULE,
                    "reach into %s._lock (private); use the public "
                    "`with %s.locked():` accessor" % (receiver, receiver))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr.endswith("_locked"):
                if not (self.holds_any_lock()
                        or self.in_locked_function()):
                    receiver = dotted(func.value) or "<expr>"
                    self.report(
                        node, RULE,
                        "call to %s.%s() outside any lock context; "
                        "`_locked` methods require the owning lock "
                        "held" % (receiver, func.attr))
            if (func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr in GUARDED_FIELDS):
                self._check_write(node, dotted(func.value.value),
                                  func.value.attr)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target)
        self.generic_visit(node)

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)
        elif isinstance(target, ast.Starred):
            self._check_target(target.value)
        elif isinstance(target, ast.Subscript):
            # self._partition_max_size[i] = peak
            self._check_target_attr(target.value, target)
        elif isinstance(target, ast.Attribute):
            self._check_target_attr(target, target)

    def _check_target_attr(self, attr: ast.AST, report_node) -> None:
        if isinstance(attr, ast.Attribute) and attr.attr in GUARDED_FIELDS:
            self._check_write(report_node, dotted(attr.value), attr.attr)

    def _check_write(self, node: ast.AST, receiver: str | None,
                     fieldname: str) -> None:
        if receiver is None:
            return
        if receiver == "self" and self.in_locked_function():
            return
        if self.holds_lock_on(receiver):
            return
        self.report(
            node, RULE,
            "write to %s.%s outside `with %s.locked():` (or a "
            "`*_locked` method); guarded index state must be "
            "lock-serialised" % (receiver, fieldname, receiver))


class LockDisciplineChecker(Checker):
    rule_id = RULE
    title = "lock discipline for guarded index state"
    visitor_class = _Visitor
