"""RL007 — serve-layer dispatch must not open raw transport.

PR 9 put every remote hop behind
:class:`~repro.serve.executor.ShardExecutor`: the router fans out
through :class:`~repro.serve.remote.RemoteShardExecutor`, which owns
connection pooling, the one-retry-on-dropped-keep-alive rule, replica
failover and the epoch tag on every wire response.  A dispatch path
that opens its own ``http.client.HTTPConnection``, ``urlopen``, raw
``socket`` or ``asyncio.open_connection`` silently loses all four
guarantees — its calls are invisible to the failover counters, never
retried on a replica, and return answers with no epoch to tag — and
the fault-injection battery cannot see them.

Inside ``repro/serve/`` (excluding ``repro/serve/remote.py``, which
*is* the sanctioned transport) this rule flags any call resolving into
``http.client``, ``urllib.request``, ``requests`` or ``aiohttp``, plus
the raw socket constructors (``socket.socket``,
``socket.create_connection``, ``socket.socketpair``) and the asyncio
client-stream opener ``asyncio.open_connection``.  Listening
(``asyncio.start_server``) stays legal: the rule forbids *originating*
connections from dispatch code, not serving them.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import (
    Checker,
    ScopeVisitor,
    dotted,
    import_aliases,
    resolve_dotted,
)

__all__ = ["RawTransportChecker"]

RULE = "RL007"

#: Module prefixes whose every call is an HTTP client primitive.
TRANSPORT_PREFIXES = (
    "http.client.",
    "urllib.request.",
    "requests.",
    "aiohttp.",
)

#: Exact call paths that originate a raw connection.
RAW_CONNECT_CALLS = frozenset({
    "socket.socket",
    "socket.create_connection",
    "socket.socketpair",
    "asyncio.open_connection",
})


class _Visitor(ScopeVisitor):

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._modules: dict[str, str] = {}
        self._names: dict[str, str] = {}

    def visit_Module(self, node: ast.Module) -> None:
        self._modules, self._names = import_aliases(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        path = resolve_dotted(dotted(node.func), self._modules,
                              self._names)
        if path is not None:
            self._check_path(node, path)
        self.generic_visit(node)

    def _check_path(self, node: ast.Call, path: str) -> None:
        if path in RAW_CONNECT_CALLS:
            self.report(
                node, RULE,
                "raw connection via %s(...) in a serve dispatch path; "
                "remote hops go through ShardExecutor "
                "(RemoteShardExecutor owns transport, retry and "
                "failover)" % path)
            return
        if any(path.startswith(prefix) for prefix in TRANSPORT_PREFIXES):
            self.report(
                node, RULE,
                "direct HTTP client call %s(...) in a serve dispatch "
                "path bypasses ShardExecutor; its requests are "
                "invisible to failover/retry counters and carry no "
                "epoch tag" % path)


class RawTransportChecker(Checker):
    rule_id = RULE
    title = "serve dispatch speaks remote only via ShardExecutor"
    scope = ("repro/serve/",)
    visitor_class = _Visitor

    def applies_to(self, path: str) -> bool:
        if path.endswith("repro/serve/remote.py"):
            return False  # the sanctioned transport layer itself
        return super().applies_to(path)
