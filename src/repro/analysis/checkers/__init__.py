"""The invariant checkers: one module per rule id.

Adding a rule: subclass :class:`repro.analysis.checkers.common.Checker`
in a new module, give it a fresh ``RLxxx`` id, and append it to
:data:`ALL_CHECKERS`.  The engine (suppression, baseline, output
formats, CI wiring) picks it up with no further changes.
"""

from repro.analysis.checkers.async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.common import Checker, Finding
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.epoch_capture import EpochCaptureChecker
from repro.analysis.checkers.ipc_safety import IpcSafetyChecker
from repro.analysis.checkers.kernel_bypass import KernelBypassChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.transport import RawTransportChecker

ALL_CHECKERS: tuple[Checker, ...] = (
    LockDisciplineChecker(),
    AsyncBlockingChecker(),
    DeterminismChecker(),
    IpcSafetyChecker(),
    EpochCaptureChecker(),
    KernelBypassChecker(),
    RawTransportChecker(),
)

__all__ = ["ALL_CHECKERS", "Checker", "Finding"]
