"""Shared AST machinery for the invariant checkers.

Every checker reasons about the same three lexical facts: the dotted
receiver of an attribute chain, the stack of enclosing function
definitions, and the stack of lexically active lock contexts (``with
x._lock:`` / ``with x.locked():``).  :class:`ScopeVisitor` tracks the
latter two during a single traversal so each checker only implements
its rule predicate.

The analysis is deliberately lexical, not interprocedural: a helper
that documents "caller must hold the lock" encodes that contract in its
name (the ``*_locked`` suffix) and the rules trust the naming
convention.  That keeps every rule O(nodes) and its findings easy to
explain — the same trade the checkers' prototypes (flake8 plugins,
pylint custom checkers) make.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "Checker",
    "ScopeVisitor",
    "dotted",
    "import_aliases",
    "lock_receiver",
]


def dotted(node: ast.AST) -> str | None:
    """The ``self.index._lock``-style dotted path of a Name/Attribute
    chain, or None when the chain bottoms out in anything else (a call
    result, a subscript, a literal)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def lock_receiver(ctx_expr: ast.AST) -> str | None:
    """The receiver whose lock a ``with`` item acquires, if any.

    Recognises the two sanctioned spellings — ``with x._lock:`` (own
    lock) and ``with x.locked():`` (the public accessor) — and returns
    the dotted path of ``x``.
    """
    if isinstance(ctx_expr, ast.Attribute) and ctx_expr.attr == "_lock":
        return dotted(ctx_expr.value)
    if (isinstance(ctx_expr, ast.Call)
            and isinstance(ctx_expr.func, ast.Attribute)
            and ctx_expr.func.attr == "locked"):
        return dotted(ctx_expr.func.value)
    return None


def import_aliases(tree: ast.Module) -> tuple[dict[str, str],
                                              dict[str, str]]:
    """``(modules, names)`` alias maps for a module.

    ``modules`` maps a bound name to the module it names (``import
    numpy as np`` -> ``{"np": "numpy"}``); ``names`` maps a
    from-imported name to its dotted origin (``from time import time``
    -> ``{"time": "time.time"}``).  Only absolute imports participate —
    the repo has no relative imports, and a relative origin could not
    be compared against rule tables anyway.
    """
    modules: dict[str, str] = {}
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                modules[bound] = alias.name if alias.asname else bound
        elif isinstance(node, ast.ImportFrom):
            if node.module and not node.level:
                for alias in node.names:
                    names[alias.asname or alias.name] = (
                        node.module + "." + alias.name)
    return modules, names


def resolve_dotted(path: str | None, modules: dict[str, str],
                   names: dict[str, str]) -> str | None:
    """Rewrite the first component of ``path`` through the alias maps
    so rule tables can match canonical module paths (``np.random.rand``
    -> ``numpy.random.rand``, ``t.sleep`` -> ``time.sleep``)."""
    if path is None:
        return None
    head, sep, rest = path.partition(".")
    if head in modules:
        head = modules[head]
    elif head in names:
        head = names[head]
    return head + sep + rest


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source position."""

    path: str  # posix-style path as given to the engine
    line: int
    col: int
    rule: str
    message: str


@dataclass
class FileContext:
    """Everything a checker may need about the file under analysis."""

    path: str  # posix-style
    source: str
    lines: list[str] = field(default_factory=list)


class ScopeVisitor(ast.NodeVisitor):
    """AST visitor tracking enclosing functions and active lock scopes.

    Subclasses get, at any point of the traversal:

    * ``func_stack`` — enclosing ``FunctionDef``/``AsyncFunctionDef``
      nodes, innermost last;
    * ``lock_stack`` — ``(receiver, with_node)`` pairs for every
      lexically enclosing lock ``with`` (see :func:`lock_receiver`);

    plus the convenience predicates below.  Override ``enter_function``
    / ``leave_function`` for per-function bookkeeping.
    """

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self.func_stack: list[ast.AST] = []
        self.lock_stack: list[tuple[str, ast.With | ast.AsyncWith]] = []

    # ----------------------- traversal hooks ------------------------ #

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        self.func_stack.append(node)
        self.enter_function(node)
        self.generic_visit(node)
        self.leave_function(node)
        self.func_stack.pop()

    def enter_function(self, node) -> None:  # noqa: B027 — optional hook
        pass

    def leave_function(self, node) -> None:  # noqa: B027 — optional hook
        pass

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        pushed = 0
        for item in node.items:
            receiver = lock_receiver(item.context_expr)
            if receiver is not None:
                self.lock_stack.append((receiver, node))
                pushed += 1
        self.generic_visit(node)
        del self.lock_stack[len(self.lock_stack) - pushed:]

    # ------------------------- predicates --------------------------- #

    def holds_any_lock(self) -> bool:
        return bool(self.lock_stack)

    def holds_lock_on(self, receiver: str) -> bool:
        return any(r == receiver for r, _ in self.lock_stack)

    def innermost_lock(self):
        """The innermost enclosing lock ``with`` node, or None."""
        return self.lock_stack[-1][1] if self.lock_stack else None

    def in_locked_function(self) -> bool:
        """Inside a method whose name declares the lock is already held
        (the ``*_locked`` convention), or an ``__init__`` (the object
        is not shared yet)."""
        return any(
            f.name.endswith("_locked") or f.name == "__init__"
            for f in self.func_stack)

    # -------------------------- reporting --------------------------- #

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.path, line=node.lineno,
            col=node.col_offset + 1, rule=rule, message=message))


class Checker:
    """Base class: one rule id, an optional path scope, a visitor."""

    rule_id: str = ""
    title: str = ""
    #: Substrings of the posix path this rule is restricted to
    #: (None = every file).
    scope: tuple[str, ...] | None = None
    visitor_class: type[ScopeVisitor] = ScopeVisitor

    def applies_to(self, path: str) -> bool:
        if self.scope is None:
            return True
        return any(fragment in path for fragment in self.scope)

    def check(self, tree: ast.Module, ctx: FileContext) -> list[Finding]:
        visitor = self.visitor_class(ctx)
        visitor.visit(tree)
        return visitor.findings
