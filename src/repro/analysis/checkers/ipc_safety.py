"""RL004 — pickle-safety of process-pool / pipe payloads.

:class:`repro.parallel.procpool.ProcPool` ships every task down a
``multiprocessing`` pipe; anything unpicklable dies at ``send`` time —
but only on the *spawn* start method (fork shares the parent image and
masks the bug until the CI spawn matrix or a macOS user hits it).  The
classic offenders are closures and capability objects: lambdas, thread
locks, mmap handles, open files.

The rule inspects dispatch call sites — ``<...pool...>.run(...)``,
``<...conn/pipe...>.send(...)``, and the ``task_for(...)`` builders —
and flags any argument whose expression tree (including one level of
local-variable indirection within the enclosing function) contains a
lambda, an ``open(...)`` call, or a ``threading``/``multiprocessing``
lock/event/mmap constructor.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.common import (
    Checker,
    ScopeVisitor,
    dotted,
    import_aliases,
    resolve_dotted,
)

__all__ = ["IpcSafetyChecker"]

RULE = "RL004"

UNPICKLABLE_CONSTRUCTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Event", "threading.Barrier",
    "multiprocessing.Lock", "multiprocessing.RLock",
    "multiprocessing.Condition", "multiprocessing.Event",
    "mmap.mmap",
})


def _is_dispatch(func: ast.Attribute) -> bool:
    receiver = (dotted(func.value) or "").lower()
    if func.attr == "run" and "pool" in receiver:
        return True
    if func.attr == "send" and ("conn" in receiver or "pipe" in receiver):
        return True
    return func.attr in ("task_for", "_tasks") and receiver != ""


class _Visitor(ScopeVisitor):

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._modules: dict[str, str] = {}
        self._names: dict[str, str] = {}

    def visit_Module(self, node: ast.Module) -> None:
        self._modules, self._names = import_aliases(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and _is_dispatch(func):
            bindings = self._local_bindings()
            seen: set[str] = set()
            for arg in self._argument_exprs(node):
                self._scan(arg, func, bindings, seen, depth=0)
        self.generic_visit(node)

    @staticmethod
    def _argument_exprs(node: ast.Call):
        for arg in node.args:
            yield arg.value if isinstance(arg, ast.Starred) else arg
        for kw in node.keywords:
            yield kw.value

    def _local_bindings(self) -> dict[str, ast.AST]:
        """name -> bound expression for simple assignments in the
        enclosing function (one level of indirection; last write
        wins)."""
        bindings: dict[str, ast.AST] = {}
        if not self.func_stack:
            return bindings
        for stmt in ast.walk(self.func_stack[-1]):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = stmt.value
        return bindings

    def _scan(self, expr: ast.AST, dispatch: ast.Attribute,
              bindings: dict[str, ast.AST], seen: set[str],
              depth: int) -> None:
        where = "%s.%s(...)" % (dotted(dispatch.value) or "<expr>",
                                dispatch.attr)
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Lambda):
                self.report(
                    sub, RULE,
                    "lambda in a payload handed to %s; lambdas do not "
                    "pickle — ship data, not closures" % where)
            elif isinstance(sub, ast.Call):
                path = resolve_dotted(dotted(sub.func), self._modules,
                                      self._names)
                if isinstance(sub.func, ast.Name) and sub.func.id == "open":
                    path = "open"
                if path == "open":
                    self.report(
                        sub, RULE,
                        "open file handle in a payload handed to %s; "
                        "pass the path and reopen in the worker"
                        % where)
                elif path in UNPICKLABLE_CONSTRUCTORS:
                    self.report(
                        sub, RULE,
                        "%s object in a payload handed to %s; "
                        "locks/mmaps do not cross process boundaries"
                        % (path, where))
            elif (isinstance(sub, ast.Name) and depth == 0
                    and sub.id in bindings and sub.id not in seen):
                seen.add(sub.id)
                self._scan(bindings[sub.id], dispatch, bindings, seen,
                           depth=1)


class IpcSafetyChecker(Checker):
    rule_id = RULE
    title = "process-pool payload pickle-safety"
    visitor_class = _Visitor
