"""The linter engine: walk files, run checkers, filter, report.

Pipeline per file: parse once, run every in-scope checker over the
AST, then drop findings that are suppressed in-line (``# repro-lint:
disable=RLxxx`` on the flagged line) or grandfathered in the committed
baseline file.  Anything left is a blocking finding — the CLI exits 1.

The baseline exists so a new rule can land *enabled* before every
legacy finding is fixed: ``--write-baseline`` records the survivors as
``(rule, path, fingerprint)`` triples, where the fingerprint hashes
the *text* of the flagged line (not its number) so unrelated edits
above a grandfathered site do not un-baseline it.  Entries that no
longer match anything are reported as stale so the file ratchets
towards empty.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import io
import re
import sys
import tokenize
from collections import Counter
from pathlib import Path

from repro.analysis.checkers import ALL_CHECKERS, Checker, Finding
from repro.analysis.checkers.common import FileContext

__all__ = [
    "Finding",
    "all_checkers",
    "main",
    "run_paths",
]

DEFAULT_BASELINE = ".repro-lint-baseline"

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


def all_checkers() -> tuple[Checker, ...]:
    return ALL_CHECKERS


# --------------------------------------------------------------------- #
# File collection
# --------------------------------------------------------------------- #


def iter_python_files(paths: list[str | Path],
                      exclude: tuple[str, ...] = ()) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files or directories),
    sorted, skipping caches, hidden directories, and files whose
    posix path contains any ``exclude`` substring (how CI keeps the
    deliberately-broken lint fixtures out of the blocking run)."""
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.relative_to(path).parts
                if any(p == "__pycache__" or p.startswith(".")
                       for p in parts):
                    continue
                files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(
                "%s is neither a directory nor a .py file" % path)
    if exclude:
        files = {f for f in files
                 if not any(pat in f.as_posix() for pat in exclude)}
    return sorted(files)


# --------------------------------------------------------------------- #
# Suppression comments
# --------------------------------------------------------------------- #


def suppressed_lines(source: str) -> dict[int, set[str]]:
    """line -> set of rule ids disabled on that line (``{"all"}`` for a
    blanket disable).  Comment-token based, so the marker inside a
    string literal does not suppress anything."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match:
                rules = {r.strip().lower()
                         for r in match.group(1).split(",")}
                out.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # the ast parse will report the real problem
    return out


def _is_suppressed(finding: Finding,
                   suppressions: dict[int, set[str]]) -> bool:
    rules = suppressions.get(finding.line)
    if not rules:
        return False
    return "all" in rules or finding.rule.lower() in rules


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #


def fingerprint(finding: Finding, lines: list[str]) -> str:
    """Line-number-independent identity of a finding: rule + path +
    the flagged line's stripped text."""
    text = ""
    if 1 <= finding.line <= len(lines):
        text = lines[finding.line - 1].strip()
    digest = hashlib.sha1(
        ("%s|%s|%s" % (finding.rule, finding.path, text)).encode("utf-8"))
    return digest.hexdigest()[:12]


def load_baseline(path: Path) -> Counter:
    """Multiset of ``(rule, path, fingerprint)`` baseline entries.

    Format: one entry per line — ``RLxxx path:line fingerprint`` —
    with ``#`` comments (whole-line or trailing) and blank lines
    ignored, so every grandfathered entry can carry its justification
    next to it.  The recorded ``path:line`` is documentation; matching
    uses only rule + path + fingerprint.
    """
    entries: Counter = Counter()
    for raw_line in path.read_text(encoding="utf-8").splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 3:
            raise ValueError(
                "malformed baseline entry %r (want: RULE path:line "
                "fingerprint)" % raw_line)
        rule, location, fp = fields
        entries[(rule, location.rsplit(":", 1)[0], fp)] += 1
    return entries


def write_baseline(path: Path, findings: list[tuple[Finding, str]]) -> None:
    out = [
        "# repro-lint baseline: grandfathered findings, one per line.",
        "# Regenerate with `python -m repro.analysis --write-baseline`;",
        "# every entry kept on purpose should carry a trailing comment",
        "# justifying it.  Fix the code instead whenever possible.",
    ]
    for finding, fp in sorted(findings,
                              key=lambda pair: (pair[0], pair[1])):
        out.append("%s %s:%d %s" % (finding.rule, finding.path,
                                    finding.line, fp))
    path.write_text("\n".join(out) + "\n", encoding="utf-8")


# --------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------- #


def _check_file(path: Path, display: str,
                checkers: tuple[Checker, ...],
                respect_scope: bool) -> tuple[list[Finding], list[str],
                                              int, int]:
    """-> (blocking findings+fingerprint source, lines, suppressed count)
    packaged as (findings, lines, n_suppressed, n_parse_errors)."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(path=display, line=exc.lineno or 1,
                          col=(exc.offset or 0) + 1, rule="RL000",
                          message="syntax error: %s" % exc.msg)
        return [finding], lines, 0, 1
    ctx = FileContext(path=display, source=source, lines=lines)
    suppressions = suppressed_lines(source)
    findings: list[Finding] = []
    n_suppressed = 0
    for checker in checkers:
        if respect_scope and not checker.applies_to(display):
            continue
        for finding in checker.check(tree, ctx):
            if _is_suppressed(finding, suppressions):
                n_suppressed += 1
            else:
                findings.append(finding)
    return findings, lines, n_suppressed, 0


def run_paths(paths: list[str | Path],
              checkers: tuple[Checker, ...] | None = None,
              respect_scope: bool = True,
              exclude: tuple[str, ...] = ()) -> dict:
    """Run the linter over ``paths``.

    Returns ``{"findings": [(Finding, fingerprint)...], "suppressed":
    int, "files": int}`` — baseline filtering is the caller's concern
    (the CLI applies it; tests usually want the raw findings).
    """
    checkers = all_checkers() if checkers is None else checkers
    findings: list[tuple[Finding, str]] = []
    n_suppressed = 0
    files = iter_python_files(paths, exclude=exclude)
    for path in files:
        display = path.as_posix()
        file_findings, lines, suppressed, _ = _check_file(
            path, display, checkers, respect_scope)
        n_suppressed += suppressed
        for finding in file_findings:
            findings.append((finding, fingerprint(finding, lines)))
    findings.sort(key=lambda pair: pair[0])
    return {"findings": findings, "suppressed": n_suppressed,
            "files": len(files)}


def apply_baseline(findings: list[tuple[Finding, str]],
                   baseline: Counter) -> tuple[list[tuple[Finding, str]],
                                               int, list[tuple]]:
    """-> (blocking findings, matched count, stale baseline entries)."""
    remaining = Counter(baseline)
    blocking: list[tuple[Finding, str]] = []
    matched = 0
    for finding, fp in findings:
        key = (finding.rule, finding.path, fp)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            blocking.append((finding, fp))
    stale = [key for key, count in remaining.items() if count > 0
             for _ in range(count)]
    return blocking, matched, stale


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def _format_text(finding: Finding) -> str:
    return "%s:%d:%d: %s %s" % (finding.path, finding.line, finding.col,
                                finding.rule, finding.message)


def _format_github(finding: Finding) -> str:
    # GitHub Actions workflow-command annotation; the message must be
    # single-line (newlines would terminate the command).
    message = finding.message.replace("\n", " ")
    return ("::error file=%s,line=%d,col=%d,title=%s::%s"
            % (finding.path, finding.line, finding.col, finding.rule,
               message))


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Invariant linter: AST-based concurrency/"
                    "determinism/IPC checks for this repository.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="finding output format (github emits "
                             "workflow-command annotations)")
    parser.add_argument("--baseline", type=Path,
                        default=Path(DEFAULT_BASELINE),
                        help="baseline file of grandfathered findings "
                             "(default: %s)" % DEFAULT_BASELINE)
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the new "
                             "baseline and exit 0")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="SUBSTRING",
                        help="skip files whose path contains SUBSTRING "
                             "(repeatable; e.g. tests/analysis/fixtures)")
    parser.add_argument("--no-scope", action="store_true",
                        help="run every rule on every file, ignoring "
                             "per-rule path scopes (fixture testing)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.list_rules:
        for checker in all_checkers():
            scope = (", ".join(checker.scope) if checker.scope
                     else "all files")
            print("%s  %s  [%s]" % (checker.rule_id, checker.title,
                                    scope))
        return 0
    try:
        result = run_paths(args.paths,
                           respect_scope=not args.no_scope,
                           exclude=tuple(args.exclude))
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    findings = result["findings"]

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print("wrote %d baseline entr%s to %s"
              % (len(findings), "y" if len(findings) == 1 else "ies",
                 args.baseline))
        return 0

    matched = 0
    stale: list[tuple] = []
    if not args.no_baseline and args.baseline.exists():
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        findings, matched, stale = apply_baseline(findings, baseline)

    render = (_format_github if args.format == "github"
              else _format_text)
    for finding, _ in findings:
        print(render(finding))
    summary = ("%d file(s): %d finding(s), %d suppressed, "
               "%d baselined" % (result["files"], len(findings),
                                 result["suppressed"], matched))
    print(summary, file=sys.stderr)
    for rule, path, fp in stale:
        print("stale baseline entry: %s %s %s (fixed? regenerate with "
              "--write-baseline)" % (rule, path, fp), file=sys.stderr)
    return 1 if findings else 0
