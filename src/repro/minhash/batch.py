"""Signature matrices: many MinHash signatures as one ndarray.

The paper's deployment answers domain-search queries for many users at
once; per-query Python overhead (object construction, per-band tuple
building, attribute lookups) dominates once the index fits in memory.
:class:`SignatureBatch` holds ``n`` signatures as a single
``(n, num_perm)`` uint64 matrix so that the batch query path can

* estimate all ``n`` cardinalities in one vectorised pass
  (:meth:`SignatureBatch.counts`), and
* pack all band bucket-keys of all signatures with one
  ``ndarray.tobytes`` call per band slice (:func:`pack_band_keys`)
  instead of one Python loop iteration per signature.

Row ``j`` of the matrix is bit-identical to
``LeanMinHash(seed, matrix[j]).hashvalues``, which is what pins the batch
path's results to the single-query path: both derive bucket keys from the
same bytes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.minhash.hashfunc import MAX_HASH_32
from repro.minhash.lean import LeanMinHash, _deeply_readonly
from repro.minhash.minhash import HASH_RANGE, MinHash

__all__ = ["SignatureBatch", "pack_band_keys", "as_signature_matrix",
           "prepare_bulk_insert"]


def prepare_bulk_insert(keys, batch, seeds, num_perm: int, existing,
                        container_name: str):
    """Shared prologue of the bulk-insert paths: validate and freeze.

    Normalises ``batch`` to an ``(n, num_perm)`` matrix, checks key
    count/duplicates (against ``existing`` too), freezes a writable
    matrix so stored signatures cannot be mutated through the caller's
    array, and wraps every row as a zero-copy :class:`LeanMinHash`.
    ``seeds`` is a scalar or per-row sequence, defaulting to the batch's
    seed for a :class:`SignatureBatch` and to 1 otherwise (the MinHash
    default).  Returns ``(keys, matrix, signatures)`` with the matrix
    read-only and the signatures row-aligned with ``keys``.
    """
    if isinstance(batch, SignatureBatch) and seeds is None:
        seeds = batch.seed
    matrix = as_signature_matrix(batch, num_perm)
    keys = list(keys)
    if len(keys) != matrix.shape[0]:
        raise ValueError(
            "got %d keys for %d signature rows" % (len(keys),
                                                   matrix.shape[0])
        )
    if not keys:
        return keys, matrix, []
    key_set = set(keys)
    if len(key_set) != len(keys):
        raise ValueError("duplicate keys in batch")
    if existing and not key_set.isdisjoint(existing):
        dup = next(k for k in keys if k in existing)
        raise ValueError(
            "key %r is already in the %s" % (dup, container_name))
    if not _deeply_readonly(matrix):
        matrix = matrix.copy()
        matrix.setflags(write=False)
    if seeds is None:
        seeds = 1
    if np.ndim(seeds) == 0:
        seed = int(seeds)
        signatures = [LeanMinHash.wrap(seed, matrix[i])
                      for i in range(len(keys))]
    else:
        if len(seeds) != len(keys):
            raise ValueError(
                "got %d seeds for %d signature rows"
                % (len(seeds), len(keys))
            )
        signatures = [LeanMinHash.wrap(int(seeds[i]), matrix[i])
                      for i in range(len(keys))]
    return keys, matrix, signatures


def pack_band_keys(matrix: np.ndarray, start: int, stop: int) -> list[bytes]:
    """Bucket keys of one band slice for every row, in one byte-packing pass.

    ``matrix[:, start:stop]`` is copied to a contiguous block and converted
    with a single ``tobytes`` call; the per-row keys are then constant-size
    slices of that buffer.  Row ``j``'s key equals
    ``LeanMinHash(..., matrix[j]).band(start, stop)`` exactly, so batch
    probes hit the same buckets single-signature probes do.
    """
    block = np.ascontiguousarray(matrix[:, start:stop])
    stride = block.shape[1] * block.itemsize
    buf = block.tobytes()
    return [buf[off:off + stride] for off in range(0, len(buf), stride)]


def as_signature_matrix(batch, num_perm: int) -> np.ndarray:
    """Normalise a batch argument to an ``(n, num_perm)`` uint64 matrix.

    Accepts a :class:`SignatureBatch`, a 2-D uint-compatible ndarray, or a
    sequence of :class:`MinHash` / :class:`LeanMinHash` signatures.
    """
    if isinstance(batch, SignatureBatch):
        matrix = batch.matrix
    elif isinstance(batch, np.ndarray):
        matrix = np.ascontiguousarray(batch, dtype=np.uint64)
        if matrix.ndim != 2:
            raise ValueError(
                "signature matrix must be 2-D, got %d-D" % matrix.ndim
            )
    else:
        matrix = SignatureBatch.from_signatures(batch).matrix
    if matrix.shape[0] and matrix.shape[1] != num_perm:
        raise ValueError(
            "batch num_perm %d does not match index num_perm %d"
            % (matrix.shape[1], num_perm)
        )
    return matrix


class SignatureBatch:
    """``n`` frozen MinHash signatures stored as one ``(n, m)`` matrix.

    Parameters
    ----------
    keys:
        One identifier per row (any objects; queries report results in
        this order).  ``None`` uses the row indices ``0..n-1``.
    matrix:
        ``(n, num_perm)`` array of minimum hash values; copied to a
        read-only contiguous uint64 array.
    seed:
        Permutation-family seed shared by all rows (signatures built with
        different seeds are not comparable; the batch stores one).
    """

    __slots__ = ("keys", "matrix", "seed")

    def __init__(self, keys: Sequence | None, matrix: np.ndarray,
                 seed: int = 1) -> None:
        mat = np.ascontiguousarray(matrix, dtype=np.uint64)
        if mat.ndim != 2:
            raise ValueError("matrix must be 2-D, got %d-D" % mat.ndim)
        if mat.shape[1] < 1:
            raise ValueError("matrix must have at least one column")
        if keys is None:
            keys = range(mat.shape[0])
        keys = list(keys)
        if len(keys) != mat.shape[0]:
            raise ValueError(
                "got %d keys for %d signature rows" % (len(keys), mat.shape[0])
            )
        if mat.base is not None or mat is matrix:
            mat = mat.copy()
        mat.setflags(write=False)
        self.keys = keys
        self.matrix = mat
        self.seed = int(seed)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_signatures(cls, signatures: Sequence[MinHash | LeanMinHash],
                        keys: Sequence | None = None) -> "SignatureBatch":
        """Stack individual signatures into a batch (copying their rows)."""
        sigs = list(signatures)
        if not sigs:
            return cls(keys, np.empty((0, 1), dtype=np.uint64))
        first = sigs[0]
        for s in sigs:
            if not isinstance(s, (MinHash, LeanMinHash)):
                raise TypeError(
                    "expected MinHash or LeanMinHash, got %r"
                    % type(s).__name__
                )
            if s.num_perm != first.num_perm:
                raise ValueError(
                    "all signatures in a batch must share num_perm "
                    "(%d vs %d)" % (s.num_perm, first.num_perm)
                )
            if s.seed != first.seed:
                raise ValueError(
                    "all signatures in a batch must share the seed"
                )
        matrix = np.vstack([s.hashvalues for s in sigs])
        return cls(keys, matrix, seed=first.seed)

    # ------------------------------------------------------------------ #
    # Vectorised estimators
    # ------------------------------------------------------------------ #

    def counts(self) -> np.ndarray:
        """Per-row cardinality estimates, one vectorised pass.

        Bit-identical to ``[self[j].count() for j in range(len(self))]``
        (same float64 operations applied row-wise), which keeps the
        batch query path's ``approx(|Q|)`` equal to the single-query one.
        """
        totals = (self.matrix / np.float64(MAX_HASH_32)).sum(axis=1)
        with np.errstate(divide="ignore"):
            est = np.rint(self.matrix.shape[1] / totals - 1.0)
        est = np.where(totals == 0.0, np.float64(HASH_RANGE), est)
        return est.astype(np.int64)

    def band_keys(self, start: int, stop: int) -> list[bytes]:
        """Per-row bucket keys for one band; see :func:`pack_band_keys`."""
        return pack_band_keys(self.matrix, start, stop)

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #

    @property
    def num_perm(self) -> int:
        return int(self.matrix.shape[1])

    def __len__(self) -> int:
        return int(self.matrix.shape[0])

    def __getitem__(self, index: int) -> LeanMinHash:
        """Row ``index`` as a :class:`LeanMinHash` aliasing the matrix.

        The matrix is frozen (read-only), so the row can be wrapped
        without a copy — thawing a whole batch into signatures costs no
        signature-payload copies.
        """
        return LeanMinHash.wrap(self.seed, self.matrix[index])

    def __iter__(self):
        for j in range(len(self)):
            yield self[j]

    def take(self, rows: Sequence[int]) -> np.ndarray:
        """The sub-matrix of the given rows (a contiguous copy)."""
        return np.ascontiguousarray(self.matrix[list(rows)])

    def __repr__(self) -> str:
        return "SignatureBatch(n=%d, num_perm=%d, seed=%d)" % (
            len(self), self.num_perm, self.seed)
