"""Bottom-k sketches (Cohen & Kaplan 2007) — the paper's reference [10].

Algorithm 1's ``approx(|Q|)`` cites bottom-k sketches for constant-time
cardinality estimation from a signature.  A bottom-k sketch keeps the
``k`` smallest hash values of a domain under a *single* hash function
(contrast MinHash: one minimum under each of ``m`` functions).  It
supports:

* unbiased cardinality estimation ``(k - 1) / v_k`` with ``v_k`` the
  k-th smallest normalised hash;
* Jaccard estimation by coordinated sampling: the fraction of the
  union-sketch members present in both sketches;
* exact union composition (merge the value sets, keep the k smallest).

The ensemble itself uses the MinHash-based estimator (the signatures are
already there); this module completes the cited substrate and serves as
an independent cross-check in tests.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.minhash.hashfunc import MAX_HASH_64, hash_value64

__all__ = ["BottomKSketch"]


class BottomKSketch:
    """The ``k`` smallest 64-bit value hashes of a domain."""

    __slots__ = ("k", "_heap", "_members")

    def __init__(self, k: int = 256) -> None:
        if k < 2:
            raise ValueError("k must be >= 2 for the estimator to work")
        self.k = int(k)
        # Max-heap via negation: the root is the largest kept hash, so a
        # new smaller hash can evict it in O(log k).
        self._heap: list[int] = []
        self._members: set[int] = set()

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def update(self, value: object) -> None:
        """Fold one domain value into the sketch."""
        hv = hash_value64(value)
        if hv in self._members:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, -hv)
            self._members.add(hv)
        elif hv < -self._heap[0]:
            evicted = -heapq.heappushpop(self._heap, -hv)
            self._members.discard(evicted)
            self._members.add(hv)

    def update_batch(self, values: Iterable[object]) -> None:
        for v in values:
            self.update(v)

    @classmethod
    def from_values(cls, values: Iterable[object], k: int = 256,
                    ) -> "BottomKSketch":
        sketch = cls(k=k)
        sketch.update_batch(values)
        return sketch

    # ------------------------------------------------------------------ #
    # Estimators
    # ------------------------------------------------------------------ #

    def count(self) -> int:
        """Estimate the number of distinct values folded in.

        With fewer than ``k`` members the sketch is exact.  Otherwise the
        k-th order statistic of uniform hashes yields the unbiased
        estimator ``(k - 1) / v_k`` (hashes normalised to ``(0, 1]``).
        """
        if len(self._heap) < self.k:
            return len(self._members)
        v_k = (-self._heap[0] + 1) / (MAX_HASH_64 + 1)
        return int(round((self.k - 1) / v_k))

    def jaccard(self, other: "BottomKSketch") -> float:
        """Coordinated-sampling Jaccard estimate.

        The bottom-k of the union is a uniform sample of the union; the
        fraction of that sample present in both sketches estimates
        ``|A ∩ B| / |A ∪ B|``.
        """
        if self.k != other.k:
            raise ValueError("cannot compare sketches with different k")
        union_sample = heapq.nsmallest(
            self.k, self._members | other._members
        )
        if not union_sample:
            return 1.0  # two empty domains
        both = sum(1 for hv in union_sample
                   if hv in self._members and hv in other._members)
        return both / len(union_sample)

    def containment_in(self, other: "BottomKSketch") -> float:
        """Estimate ``t(self, other) = |A ∩ B| / |A|`` (Eq. 1).

        Uses the Jaccard estimate plus both cardinality estimates via
        inclusion-exclusion — the sketch analogue of Eq. 6.
        """
        a = self.count()
        if a == 0:
            raise ValueError("cannot compute containment of an empty domain")
        b = other.count()
        s = self.jaccard(other)
        if 1.0 + s == 0.0:
            return 0.0
        # t = s (a + b) / (a (1 + s)), clipped to the valid range.
        t = s * (a + b) / (a * (1.0 + s))
        return min(1.0, max(0.0, t))

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #

    def merge(self, other: "BottomKSketch") -> None:
        """In-place union: afterwards the sketch represents A ∪ B."""
        if self.k != other.k:
            raise ValueError("cannot merge sketches with different k")
        merged = heapq.nsmallest(self.k, self._members | other._members)
        self._heap = [-hv for hv in merged]
        heapq.heapify(self._heap)
        self._members = set(merged)

    def __len__(self) -> int:
        """Number of hash values currently retained (<= k)."""
        return len(self._members)

    def __repr__(self) -> str:
        return "BottomKSketch(k=%d, retained=%d)" % (self.k,
                                                     len(self._members))
