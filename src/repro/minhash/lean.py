"""Frozen, compact MinHash signatures.

At index-build time LSH Ensemble holds one signature per domain — hundreds
of millions in the paper's WDC experiment.  :class:`LeanMinHash` drops the
permutation coefficients and the per-instance hash function, keeping only
the ``(seed, hashvalues)`` pair, which makes it

* ~8 bytes x ``m`` of payload,
* hashable (usable as a dict key / dedup key),
* cheaply serialisable to bytes (:meth:`serialize` / :meth:`deserialize`).

A LeanMinHash supports the read-only half of the :class:`MinHash` API
(jaccard, count, band slicing) but not updates.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.minhash.hashfunc import MAX_HASH_32
from repro.minhash.minhash import HASH_RANGE, MinHash

__all__ = ["LeanMinHash"]


def _deeply_readonly(array) -> bool:
    """True when no array in ``array``'s base chain is writable.

    A read-only *view* of a writable array is not frozen — the caller
    can still mutate the storage through the base — so zero-copy
    aliasing is only safe when the whole chain is read-only (owning
    read-only arrays, read-only memmaps, frombuffer-over-bytes, and
    views thereof; non-array bases like ``mmap`` objects end the walk).
    """
    node = array
    while node is not None:
        flags = getattr(node, "flags", None)
        if flags is not None and flags.writeable:
            return False
        node = getattr(node, "base", None)
    return True


class LeanMinHash:
    """Immutable MinHash signature: just the seed and the hash values."""

    __slots__ = ("seed", "hashvalues", "_hash")

    def __init__(self, minhash: MinHash | None = None, *,
                 seed: int | None = None,
                 hashvalues: np.ndarray | None = None) -> None:
        if minhash is not None:
            seed = minhash.seed
            hashvalues = minhash.hashvalues
        if seed is None or hashvalues is None:
            raise ValueError(
                "provide either a MinHash or both seed and hashvalues"
            )
        self.seed = int(seed)
        hv = np.asarray(hashvalues, dtype=np.uint64)
        hv = hv.copy()
        hv.setflags(write=False)
        self.hashvalues = hv
        self._hash: int | None = None

    @classmethod
    def wrap(cls, seed: int, hashvalues: np.ndarray) -> "LeanMinHash":
        """Wrap an existing read-only uint64 row without copying it.

        The zero-copy construction path used by the bulk-build and
        persistence machinery: rows of a frozen
        :class:`~repro.minhash.batch.SignatureBatch` matrix (or of a
        memory-mapped snapshot) become signatures that alias the matrix
        storage.  ``hashvalues`` must already be a non-writable 1-D
        uint64 array; anything else falls back to the copying
        constructor so immutability is never violated.
        """
        if (not isinstance(hashvalues, np.ndarray)
                or hashvalues.dtype != np.uint64
                or hashvalues.ndim != 1
                or not _deeply_readonly(hashvalues)):
            return cls(seed=seed, hashvalues=hashvalues)
        obj = object.__new__(cls)
        obj.seed = int(seed)
        obj.hashvalues = hashvalues
        obj._hash = None
        return obj

    # ------------------------------------------------------------------ #
    # Read-only estimator API (mirrors MinHash)
    # ------------------------------------------------------------------ #

    @property
    def num_perm(self) -> int:
        return int(self.hashvalues.shape[0])

    def jaccard(self, other: "LeanMinHash | MinHash") -> float:
        """Unbiased Jaccard similarity estimate against another signature."""
        self._check_compatible(other)
        return float(
            np.count_nonzero(self.hashvalues == other.hashvalues)
        ) / self.num_perm

    def count(self) -> int:
        """Cardinality estimate; see :meth:`MinHash.count`."""
        total = np.sum(self.hashvalues / np.float64(MAX_HASH_32))
        if total == 0:
            return HASH_RANGE
        return int(round(self.num_perm / float(total) - 1.0))

    def band(self, start: int, stop: int) -> bytes:
        """The hash values of one LSH band, packed to hashable bytes.

        One ``ndarray.tobytes`` call per probe — faster to build and hash
        than a tuple of Python ints, and prefix-sliceable: the first
        ``d * itemsize`` bytes equal ``band(start, start + d)``, which is
        what the prefix-forest depth tables key on.  The batch query path
        produces the same bytes for whole signature matrices in one call
        (:func:`repro.minhash.batch.pack_band_keys`).
        """
        return self.hashvalues[start:stop].tobytes()

    def to_minhash(self, hashfunc=None) -> MinHash:
        """Thaw back into a mutable :class:`MinHash`."""
        from repro.minhash.hashfunc import hash_value32

        return MinHash(
            num_perm=self.num_perm,
            seed=self.seed,
            hashfunc=hashfunc or hash_value32,
            hashvalues=self.hashvalues,
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    _HEADER = struct.Struct("<qi")

    def serialize(self) -> bytes:
        """Pack to bytes: little-endian seed, num_perm, then the values."""
        return self._HEADER.pack(self.seed, self.num_perm) + self.hashvalues.tobytes()

    @classmethod
    def deserialize(cls, buf: bytes) -> "LeanMinHash":
        """Inverse of :meth:`serialize`."""
        seed, num_perm = cls._HEADER.unpack_from(buf, 0)
        hv = np.frombuffer(buf, dtype=np.uint64, count=num_perm,
                           offset=cls._HEADER.size)
        return cls(seed=seed, hashvalues=hv)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #

    def _check_compatible(self, other: "LeanMinHash | MinHash") -> None:
        if self.seed != other.seed:
            raise ValueError("cannot compare signatures with different seeds")
        if self.num_perm != other.num_perm:
            raise ValueError("cannot compare signatures with different num_perm")

    def __len__(self) -> int:
        return self.num_perm

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LeanMinHash):
            return NotImplemented
        return self.seed == other.seed and bool(
            np.array_equal(self.hashvalues, other.hashvalues)
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.seed, self.hashvalues.tobytes()))
        return self._hash

    def __repr__(self) -> str:
        return "LeanMinHash(num_perm=%d, seed=%d)" % (self.num_perm, self.seed)
