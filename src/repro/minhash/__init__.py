"""Minwise hashing substrate: signatures, frozen signatures, bulk builders."""

from repro.minhash.hashfunc import (
    MAX_HASH_32,
    MAX_HASH_64,
    canonical_bytes,
    hash_value32,
    hash_value64,
    sha1_hash32,
    sha1_hash64,
)
from repro.minhash.batch import SignatureBatch, as_signature_matrix, pack_band_keys
from repro.minhash.bottomk import BottomKSketch
from repro.minhash.generator import (
    MinHashGenerator,
    SignatureFactory,
    build_signatures,
    bulk_signatures,
    sample_signatures,
)
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash

__all__ = [
    "MinHash",
    "LeanMinHash",
    "SignatureBatch",
    "BottomKSketch",
    "SignatureFactory",
    "MinHashGenerator",
    "build_signatures",
    "bulk_signatures",
    "sample_signatures",
    "pack_band_keys",
    "as_signature_matrix",
    "sha1_hash32",
    "sha1_hash64",
    "hash_value32",
    "hash_value64",
    "canonical_bytes",
    "MAX_HASH_32",
    "MAX_HASH_64",
]
