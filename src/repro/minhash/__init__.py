"""Minwise hashing substrate: signatures, frozen signatures, bulk builders."""

from repro.minhash.hashfunc import (
    MAX_HASH_32,
    MAX_HASH_64,
    canonical_bytes,
    hash_value32,
    hash_value64,
    sha1_hash32,
    sha1_hash64,
)
from repro.minhash.bottomk import BottomKSketch
from repro.minhash.generator import (
    SignatureFactory,
    build_signatures,
    sample_signatures,
)
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash

__all__ = [
    "MinHash",
    "LeanMinHash",
    "BottomKSketch",
    "SignatureFactory",
    "build_signatures",
    "sample_signatures",
    "sha1_hash32",
    "sha1_hash64",
    "hash_value32",
    "hash_value64",
    "canonical_bytes",
    "MAX_HASH_32",
    "MAX_HASH_64",
]
