"""Minwise hashing signatures (Broder 1997), the paper's Section 3.1.

A :class:`MinHash` holds ``m`` minimum hash values, one per random
permutation of the value universe.  Permutations are approximated with the
standard universal-hash family ``h_i(v) = ((a_i * v + b_i) mod p) mod 2^32``
over the Mersenne prime ``p = 2^61 - 1``; all ``m`` permutations are applied
to a batch of values with one vectorised numpy expression.

The estimator properties the rest of the system relies on:

* ``P(hmin_i(X) == hmin_i(Y)) == s(X, Y)`` (Eq. 4) — Jaccard similarity is
  the collision probability, so :meth:`MinHash.jaccard` is unbiased.
* the signature of a union is the element-wise minimum of signatures
  (:meth:`MinHash.merge`), which LSH Ensemble uses to stream domains.
* domain cardinality is estimated from the signature alone
  (:meth:`MinHash.count`, Cohen & Kaplan bottom-k style) — Algorithm 1's
  ``approx(|Q|)``.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.minhash.hashfunc import MAX_HASH_32, hash_value32

__all__ = ["MinHash", "MERSENNE_PRIME", "MAX_HASH", "HASH_RANGE"]

# The Mersenne prime 2^61 - 1: large enough that (a * h + b) never collides
# modulo p for 32-bit inputs, small enough for exact uint64 arithmetic via
# Python ints / numpy objects. We do the modular arithmetic in uint64 space.
MERSENNE_PRIME = np.uint64((1 << 61) - 1)
MAX_HASH = np.uint64(MAX_HASH_32)
HASH_RANGE = 1 << 32

_DEFAULT_SEED = 1


def _init_permutations(num_perm: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Draw the (a, b) coefficients of ``num_perm`` universal hash functions."""
    rng = np.random.RandomState(seed)
    # a must be non-zero modulo p.
    a = rng.randint(1, int(MERSENNE_PRIME), size=num_perm, dtype=np.uint64)
    b = rng.randint(0, int(MERSENNE_PRIME), size=num_perm, dtype=np.uint64)
    return a, b


class MinHash:
    """A MinHash signature of a domain.

    Parameters
    ----------
    num_perm:
        Number of minwise hash functions ``m`` (the paper uses 256).
    seed:
        Seed for the permutation family.  Signatures are only comparable
        when built with the same ``num_perm`` and ``seed``.
    hashfunc:
        Maps a domain value to a 32-bit integer.  Defaults to SHA1-based
        hashing of the canonicalised value.
    hashvalues:
        Pre-computed signature array (used internally by copy/deserialise).
    """

    __slots__ = ("seed", "num_perm", "hashvalues", "_a", "_b", "hashfunc")

    # Cache of permutation coefficient arrays, keyed by (seed, num_perm):
    # building them dominates MinHash() construction cost otherwise.
    _perm_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

    def __init__(
        self,
        num_perm: int = 256,
        seed: int = _DEFAULT_SEED,
        hashfunc=hash_value32,
        hashvalues: np.ndarray | None = None,
    ) -> None:
        if num_perm <= 0:
            raise ValueError("num_perm must be positive, got %d" % num_perm)
        if num_perm > HASH_RANGE:
            raise ValueError("num_perm cannot exceed the hash range")
        if not callable(hashfunc):
            raise TypeError("hashfunc must be callable")
        self.seed = int(seed)
        self.num_perm = int(num_perm)
        self.hashfunc = hashfunc
        if hashvalues is not None:
            hashvalues = np.asarray(hashvalues, dtype=np.uint64)
            if hashvalues.shape != (num_perm,):
                raise ValueError(
                    "hashvalues has shape %s, expected (%d,)"
                    % (hashvalues.shape, num_perm)
                )
            self.hashvalues = hashvalues.copy()
        else:
            self.hashvalues = np.full(num_perm, MAX_HASH, dtype=np.uint64)
        key = (self.seed, self.num_perm)
        if key not in MinHash._perm_cache:
            MinHash._perm_cache[key] = _init_permutations(num_perm, self.seed)
        self._a, self._b = MinHash._perm_cache[key]

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def update(self, value: object) -> None:
        """Fold one domain value into the signature."""
        hv = np.uint64(self.hashfunc(value))
        phv = ((hv * self._a + self._b) % MERSENNE_PRIME) & MAX_HASH
        np.minimum(self.hashvalues, phv, out=self.hashvalues)

    def update_batch(self, values: Iterable[object]) -> None:
        """Fold many domain values into the signature (vectorised).

        One permutation pass over an ``(n,)`` array of value hashes updates
        all ``m`` hash functions at once; this is the fast path used by the
        corpus indexer.
        """
        hvs = np.fromiter(
            (self.hashfunc(v) for v in values), dtype=np.uint64, count=-1
        )
        if hvs.size == 0:
            return
        self.update_hashvalues_batch(hvs)

    def update_hashvalues_batch(self, value_hashes: np.ndarray) -> None:
        """Fold pre-hashed 32-bit values into the signature.

        Splitting value hashing from permutation lets the corpus pipeline
        hash each distinct value once and reuse it across signatures.
        """
        hvs = np.asarray(value_hashes, dtype=np.uint64)
        if hvs.size == 0:
            return
        # shape (n, m): permuted hash of every value under every function.
        phv = ((hvs[:, np.newaxis] * self._a + self._b) % MERSENNE_PRIME) & MAX_HASH
        np.minimum(self.hashvalues, phv.min(axis=0), out=self.hashvalues)

    # ------------------------------------------------------------------ #
    # Estimators
    # ------------------------------------------------------------------ #

    def jaccard(self, other: "MinHash") -> float:
        """Unbiased estimate of the Jaccard similarity with ``other`` (Eq. 4)."""
        self._check_compatible(other)
        return float(
            np.count_nonzero(self.hashvalues == other.hashvalues)
        ) / self.num_perm

    def count(self) -> int:
        """Estimate the domain cardinality from the signature alone.

        This is Algorithm 1's ``approx(|Q|)``: with ``m`` minimum values of
        uniform hashes on ``[0, 1)``, ``m / mean(h) - 1`` is a consistent
        estimator of the number of distinct values (Cohen & Kaplan 2007).
        """
        total = np.sum(self.hashvalues / np.float64(int(MAX_HASH)))
        if total == 0:
            # Degenerate: every minimum collapsed to 0; the domain is huge.
            return HASH_RANGE
        return int(round(self.num_perm / float(total) - 1.0))

    def is_empty(self) -> bool:
        """True when no value has been folded in yet."""
        return bool(np.all(self.hashvalues == MAX_HASH))

    # ------------------------------------------------------------------ #
    # Set algebra
    # ------------------------------------------------------------------ #

    def merge(self, other: "MinHash") -> None:
        """In-place union: after the call this signature represents X ∪ Y."""
        self._check_compatible(other)
        np.minimum(self.hashvalues, other.hashvalues, out=self.hashvalues)

    @classmethod
    def union(cls, *minhashes: "MinHash") -> "MinHash":
        """Signature of the union of two or more domains."""
        if len(minhashes) < 2:
            raise ValueError("union requires at least two MinHash objects")
        first = minhashes[0]
        for other in minhashes[1:]:
            first._check_compatible(other)
        hv = np.minimum.reduce([m.hashvalues for m in minhashes])
        return cls(
            num_perm=first.num_perm,
            seed=first.seed,
            hashfunc=first.hashfunc,
            hashvalues=hv,
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_values(
        cls,
        values: Iterable[object],
        num_perm: int = 256,
        seed: int = _DEFAULT_SEED,
        hashfunc=hash_value32,
    ) -> "MinHash":
        """Build a signature from an iterable of domain values."""
        m = cls(num_perm=num_perm, seed=seed, hashfunc=hashfunc)
        m.update_batch(values)
        return m

    def copy(self) -> "MinHash":
        """Deep copy (signature array is duplicated)."""
        return MinHash(
            num_perm=self.num_perm,
            seed=self.seed,
            hashfunc=self.hashfunc,
            hashvalues=self.hashvalues,
        )

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #

    def _check_compatible(self, other: "MinHash") -> None:
        if not isinstance(other, MinHash):
            raise TypeError("expected a MinHash, got %r" % type(other).__name__)
        if self.seed != other.seed:
            raise ValueError("cannot compare MinHash with different seeds")
        if self.num_perm != other.num_perm:
            raise ValueError(
                "cannot compare MinHash with different num_perm "
                "(%d vs %d)" % (self.num_perm, other.num_perm)
            )

    def __len__(self) -> int:
        return self.num_perm

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MinHash):
            return NotImplemented
        return (
            self.seed == other.seed
            and self.num_perm == other.num_perm
            and bool(np.array_equal(self.hashvalues, other.hashvalues))
        )

    def __repr__(self) -> str:
        return "MinHash(num_perm=%d, seed=%d)" % (self.num_perm, self.seed)
