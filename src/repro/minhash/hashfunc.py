"""Value hashing for minwise hashing.

Domains are sets of arbitrary values (strings, numbers, bytes).  Minwise
hashing needs every value mapped to an integer drawn near-uniformly from a
fixed range.  The paper's open-world requirement means we cannot enumerate a
vocabulary up front, so we hash raw bytes with SHA1 and truncate, exactly as
common MinHash implementations do.

Two widths are provided:

* :func:`sha1_hash32` — 32-bit hashes, the default used by :class:`~repro.minhash.minhash.MinHash`.
* :func:`sha1_hash64` — 64-bit hashes for callers that need a larger space.
"""

from __future__ import annotations

import hashlib
import struct

__all__ = [
    "sha1_hash32",
    "sha1_hash64",
    "canonical_bytes",
    "hash_value32",
    "hash_value64",
]

# Upper bounds (inclusive) of the two hash ranges.
MAX_HASH_32 = (1 << 32) - 1
MAX_HASH_64 = (1 << 64) - 1


def sha1_hash32(data: bytes) -> int:
    """Hash ``data`` to a 32-bit unsigned integer with SHA1.

    The first four digest bytes are interpreted as a little-endian unsigned
    integer.  SHA1's avalanche behaviour makes the truncation uniform enough
    for minwise hashing.
    """
    return struct.unpack("<I", hashlib.sha1(data).digest()[:4])[0]


def sha1_hash64(data: bytes) -> int:
    """Hash ``data`` to a 64-bit unsigned integer with SHA1."""
    return struct.unpack("<Q", hashlib.sha1(data).digest()[:8])[0]


def canonical_bytes(value: object) -> bytes:
    """Convert an arbitrary domain value to a canonical byte string.

    Values of different Python types that print identically (e.g. ``1`` and
    ``"1"``) are deliberately kept distinct by prefixing a type tag, so a
    domain mixing types does not silently collapse values.
    """
    if isinstance(value, bytes):
        return b"b:" + value
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if isinstance(value, bool):
        # bool is a subclass of int; tag it separately so True != 1.
        return b"o:" + str(value).encode("ascii")
    if isinstance(value, int):
        return b"i:" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f:" + repr(value).encode("ascii")
    return b"r:" + repr(value).encode("utf-8")


def hash_value32(value: object) -> int:
    """Hash an arbitrary domain value to 32 bits (canonicalise, then SHA1)."""
    return sha1_hash32(canonical_bytes(value))


def hash_value64(value: object) -> int:
    """Hash an arbitrary domain value to 64 bits (canonicalise, then SHA1)."""
    return sha1_hash64(canonical_bytes(value))
