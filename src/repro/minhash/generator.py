"""Bulk signature construction and synthetic signature sampling.

Three distinct jobs live here:

* :class:`SignatureFactory` builds real signatures for a corpus of domains,
  hashing every *distinct* value once and re-using the 32-bit value hash
  across domains.  Open-data corpora share values heavily (province names,
  years, ...), so the cache removes most SHA1 work.

* :class:`MinHashGenerator` extends the factory with :meth:`~MinHashGenerator.bulk`,
  which permutes the value hashes of *many* domains in one numpy pass
  (a flat value array reduced per-domain with ``np.minimum.reduceat``)
  and returns a :class:`~repro.minhash.batch.SignatureBatch` — the input
  of the batch query path.

* :func:`sample_signatures` draws *synthetic* signatures for domains of a
  given size without materialising any values.  For a random domain of size
  ``x``, each minwise hash value is the minimum of ``x`` i.i.d. uniform
  draws on ``[0, max_hash]``; its exact law is ``H * (1 - U^(1/x))`` with
  ``U ~ Uniform(0, 1)``.  This is what makes the paper's 262-million-domain
  scale experiment (Figure 9 / Table 4) reproducible on one machine: the
  timing-relevant code path (LSH insertion and querying over signatures) is
  identical, only the upstream value hashing is skipped.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.minhash.batch import SignatureBatch
from repro.minhash.hashfunc import MAX_HASH_32, hash_value32
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MAX_HASH, MERSENNE_PRIME, MinHash

__all__ = ["SignatureFactory", "MinHashGenerator", "build_signatures",
           "bulk_signatures", "sample_signatures"]


class SignatureFactory:
    """Builds MinHash signatures for many domains with a shared value cache.

    Parameters
    ----------
    num_perm:
        Signature length ``m``.
    seed:
        Permutation seed; all signatures from one factory are comparable.
    hashfunc:
        Value-to-32-bit hash.  Defaults to SHA1-based hashing.
    """

    def __init__(self, num_perm: int = 256, seed: int = 1,
                 hashfunc=hash_value32) -> None:
        self.num_perm = int(num_perm)
        self.seed = int(seed)
        self.hashfunc = hashfunc
        self._value_hash_cache: dict[object, int] = {}

    def _hash_values(self, values: Iterable[object]) -> np.ndarray:
        cache = self._value_hash_cache
        out = []
        for v in values:
            hv = cache.get(v)
            if hv is None:
                hv = self.hashfunc(v)
                cache[v] = hv
            out.append(hv)
        return np.asarray(out, dtype=np.uint64)

    def minhash(self, values: Iterable[object]) -> MinHash:
        """Signature of one domain as a mutable :class:`MinHash`."""
        m = MinHash(num_perm=self.num_perm, seed=self.seed,
                    hashfunc=self.hashfunc)
        hvs = self._hash_values(values)
        m.update_hashvalues_batch(hvs)
        return m

    def lean(self, values: Iterable[object]) -> LeanMinHash:
        """Signature of one domain as a frozen :class:`LeanMinHash`."""
        return LeanMinHash(self.minhash(values))

    def build(self, domains: Mapping[object, Iterable[object]]
              ) -> dict[object, LeanMinHash]:
        """Signatures for a whole corpus, keyed like ``domains``."""
        return {key: self.lean(values) for key, values in domains.items()}

    def cache_size(self) -> int:
        """Number of distinct values hashed so far."""
        return len(self._value_hash_cache)


class MinHashGenerator(SignatureFactory):
    """A :class:`SignatureFactory` with a vectorised many-domains path.

    :meth:`bulk` produces bit-identical hash values to building one
    :class:`~repro.minhash.minhash.MinHash` per domain (the permutation
    arithmetic is the same uint64 expression, applied to a concatenation
    of all domains' value hashes and min-reduced per domain), so callers
    may mix the two construction styles freely.
    """

    # Budget for the (values, num_perm) permuted-hash matrix of one chunk;
    # ~8M uint64 elements keeps the working set around 64 MB.
    _CHUNK_ELEMENTS = 8_000_000

    def bulk(self, domains, keys: Sequence | None = None,
             chunk_elements: int | None = None) -> SignatureBatch:
        """Signatures for many domains as one :class:`SignatureBatch`.

        Parameters
        ----------
        domains:
            Either a mapping ``{key: values}`` or an iterable of
            ``values`` collections (then ``keys`` labels them, defaulting
            to their positions).
        keys:
            Explicit row keys when ``domains`` is not a mapping.
        chunk_elements:
            Cap on the permuted-hash matrix size per numpy pass
            (testing/tuning knob; the default suits laptops).
        """
        if isinstance(domains, Mapping):
            if keys is not None:
                raise ValueError("keys must not be given with a mapping")
            keys = list(domains.keys())
            value_sets: list = [domains[k] for k in keys]
        else:
            value_sets = list(domains)
            keys = list(keys) if keys is not None else list(
                range(len(value_sets)))
            if len(keys) != len(value_sets):
                raise ValueError(
                    "got %d keys for %d domains"
                    % (len(keys), len(value_sets))
                )
        hashed = [self._hash_values(values) for values in value_sets]
        matrix = np.full((len(hashed), self.num_perm), MAX_HASH,
                         dtype=np.uint64)
        a, b = self._permutations()
        budget = int(chunk_elements or self._CHUNK_ELEMENTS)
        per_chunk = max(1, budget // max(self.num_perm, 1))
        # Walk domains in chunks whose total value count stays under the
        # element budget; empty domains keep the all-MAX_HASH row, exactly
        # like an un-updated MinHash.
        row = 0
        while row < len(hashed):
            rows = [row]
            total = hashed[row].size
            nxt = row + 1
            while nxt < len(hashed) and total + hashed[nxt].size <= per_chunk:
                total += hashed[nxt].size
                rows.append(nxt)
                nxt += 1
            nonempty = [j for j in rows if hashed[j].size]
            if nonempty:
                flat = np.concatenate([hashed[j] for j in nonempty])
                # (values, m): permuted hash of every value under every
                # hash function — the same expression MinHash applies.
                phv = ((flat[:, np.newaxis] * a + b)
                       % MERSENNE_PRIME) & MAX_HASH
                starts = np.zeros(len(nonempty), dtype=np.intp)
                np.cumsum([hashed[j].size for j in nonempty[:-1]],
                          out=starts[1:])
                matrix[nonempty] = np.minimum.reduceat(phv, starts, axis=0)
            row = nxt
        return SignatureBatch(keys, matrix, seed=self.seed)

    def _permutations(self) -> tuple[np.ndarray, np.ndarray]:
        """The shared (a, b) coefficient arrays for (seed, num_perm)."""
        key = (self.seed, self.num_perm)
        perms = MinHash._perm_cache.get(key)
        if perms is None:
            # Constructing one MinHash populates the shared cache, which
            # guarantees bulk() and MinHash() agree on coefficients.
            probe = MinHash(num_perm=self.num_perm, seed=self.seed,
                            hashfunc=self.hashfunc)
            perms = probe._a, probe._b
        return perms


def build_signatures(domains: Mapping[object, Iterable[object]],
                     num_perm: int = 256, seed: int = 1,
                     ) -> dict[object, LeanMinHash]:
    """One-shot corpus signature build; see :class:`SignatureFactory`."""
    return SignatureFactory(num_perm=num_perm, seed=seed).build(domains)


def bulk_signatures(domains: Mapping[object, Iterable[object]],
                    num_perm: int = 256, seed: int = 1) -> SignatureBatch:
    """One-shot vectorised batch build; see :meth:`MinHashGenerator.bulk`."""
    return MinHashGenerator(num_perm=num_perm, seed=seed).bulk(domains)


def sample_signatures(sizes: Sequence[int], num_perm: int = 256,
                      seed: int = 1, rng: np.random.Generator | None = None,
                      ) -> list[LeanMinHash]:
    """Draw synthetic signatures for random domains of the given sizes.

    Each returned signature is distributed exactly like the MinHash of a
    domain whose ``sizes[i]`` values were drawn fresh from the hash range:
    the minimum of ``x`` uniforms has CDF ``1 - (1 - v)^x``, sampled by
    inverse transform as ``1 - U^(1/x)``.

    Parameters
    ----------
    sizes:
        Domain cardinalities; every entry must be >= 1.
    num_perm, seed:
        Signature shape; ``seed`` only tags compatibility (synthetic
        signatures have no permutation coefficients to agree on).
    rng:
        Source of randomness (defaults to ``default_rng(seed)``).
    """
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    if sizes_arr.ndim != 1:
        raise ValueError("sizes must be one-dimensional")
    if sizes_arr.size and sizes_arr.min() < 1:
        raise ValueError("all domain sizes must be >= 1")
    if rng is None:
        rng = np.random.default_rng(seed)
    out: list[LeanMinHash] = []
    # Chunk so the (chunk, m) uniform matrix stays cache-friendly.
    chunk = max(1, int(4_000_000 // max(num_perm, 1)))
    for lo in range(0, sizes_arr.size, chunk):
        xs = sizes_arr[lo:lo + chunk]
        u = rng.random((xs.size, num_perm))
        # min of x uniforms on [0, 1]: 1 - U^(1/x), then scale to hash range.
        mins = 1.0 - np.power(u, 1.0 / xs[:, np.newaxis])
        hvs = (mins * MAX_HASH_32).astype(np.uint64)
        for row in hvs:
            out.append(LeanMinHash(seed=seed, hashvalues=row))
    return out
