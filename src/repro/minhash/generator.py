"""Bulk signature construction and synthetic signature sampling.

Two distinct jobs live here:

* :class:`SignatureFactory` builds real signatures for a corpus of domains,
  hashing every *distinct* value once and re-using the 32-bit value hash
  across domains.  Open-data corpora share values heavily (province names,
  years, ...), so the cache removes most SHA1 work.

* :func:`sample_signatures` draws *synthetic* signatures for domains of a
  given size without materialising any values.  For a random domain of size
  ``x``, each minwise hash value is the minimum of ``x`` i.i.d. uniform
  draws on ``[0, max_hash]``; its exact law is ``H * (1 - U^(1/x))`` with
  ``U ~ Uniform(0, 1)``.  This is what makes the paper's 262-million-domain
  scale experiment (Figure 9 / Table 4) reproducible on one machine: the
  timing-relevant code path (LSH insertion and querying over signatures) is
  identical, only the upstream value hashing is skipped.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.minhash.hashfunc import MAX_HASH_32, hash_value32
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash

__all__ = ["SignatureFactory", "build_signatures", "sample_signatures"]


class SignatureFactory:
    """Builds MinHash signatures for many domains with a shared value cache.

    Parameters
    ----------
    num_perm:
        Signature length ``m``.
    seed:
        Permutation seed; all signatures from one factory are comparable.
    hashfunc:
        Value-to-32-bit hash.  Defaults to SHA1-based hashing.
    """

    def __init__(self, num_perm: int = 256, seed: int = 1,
                 hashfunc=hash_value32) -> None:
        self.num_perm = int(num_perm)
        self.seed = int(seed)
        self.hashfunc = hashfunc
        self._value_hash_cache: dict[object, int] = {}

    def _hash_values(self, values: Iterable[object]) -> np.ndarray:
        cache = self._value_hash_cache
        out = []
        for v in values:
            hv = cache.get(v)
            if hv is None:
                hv = self.hashfunc(v)
                cache[v] = hv
            out.append(hv)
        return np.asarray(out, dtype=np.uint64)

    def minhash(self, values: Iterable[object]) -> MinHash:
        """Signature of one domain as a mutable :class:`MinHash`."""
        m = MinHash(num_perm=self.num_perm, seed=self.seed,
                    hashfunc=self.hashfunc)
        hvs = self._hash_values(values)
        m.update_hashvalues_batch(hvs)
        return m

    def lean(self, values: Iterable[object]) -> LeanMinHash:
        """Signature of one domain as a frozen :class:`LeanMinHash`."""
        return LeanMinHash(self.minhash(values))

    def build(self, domains: Mapping[object, Iterable[object]]
              ) -> dict[object, LeanMinHash]:
        """Signatures for a whole corpus, keyed like ``domains``."""
        return {key: self.lean(values) for key, values in domains.items()}

    def cache_size(self) -> int:
        """Number of distinct values hashed so far."""
        return len(self._value_hash_cache)


def build_signatures(domains: Mapping[object, Iterable[object]],
                     num_perm: int = 256, seed: int = 1,
                     ) -> dict[object, LeanMinHash]:
    """One-shot corpus signature build; see :class:`SignatureFactory`."""
    return SignatureFactory(num_perm=num_perm, seed=seed).build(domains)


def sample_signatures(sizes: Sequence[int], num_perm: int = 256,
                      seed: int = 1, rng: np.random.Generator | None = None,
                      ) -> list[LeanMinHash]:
    """Draw synthetic signatures for random domains of the given sizes.

    Each returned signature is distributed exactly like the MinHash of a
    domain whose ``sizes[i]`` values were drawn fresh from the hash range:
    the minimum of ``x`` uniforms has CDF ``1 - (1 - v)^x``, sampled by
    inverse transform as ``1 - U^(1/x)``.

    Parameters
    ----------
    sizes:
        Domain cardinalities; every entry must be >= 1.
    num_perm, seed:
        Signature shape; ``seed`` only tags compatibility (synthetic
        signatures have no permutation coefficients to agree on).
    rng:
        Source of randomness (defaults to ``default_rng(seed)``).
    """
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    if sizes_arr.ndim != 1:
        raise ValueError("sizes must be one-dimensional")
    if sizes_arr.size and sizes_arr.min() < 1:
        raise ValueError("all domain sizes must be >= 1")
    if rng is None:
        rng = np.random.default_rng(seed)
    out: list[LeanMinHash] = []
    # Chunk so the (chunk, m) uniform matrix stays cache-friendly.
    chunk = max(1, int(4_000_000 // max(num_perm, 1)))
    for lo in range(0, sizes_arr.size, chunk):
        xs = sizes_arr[lo:lo + chunk]
        u = rng.random((xs.size, num_perm))
        # min of x uniforms on [0, 1]: 1 - U^(1/x), then scale to hash range.
        mins = 1.0 - np.power(u, 1.0 / xs[:, np.newaxis])
        hvs = (mins * MAX_HASH_32).astype(np.uint64)
        for row in hvs:
            out.append(LeanMinHash(seed=seed, hashvalues=row))
    return out
