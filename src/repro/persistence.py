"""Index persistence: save and load a built LSH Ensemble.

At the paper's scale an index takes hours to build (Table 4: ~105 min
for 262M domains), so rebuilding on every process start is a
non-starter.  This module serialises a built index in a compact,
versioned binary format and rematerialises it on load.  Bucket
structures re-derive deterministically from the signatures, so they are
never persisted — only the entries, the configuration, and the
partition state.

Dynamic indexes (post-build delta-tier writes and/or tombstones) are
saved as a **generation-numbered manifest directory** instead of a
single file::

    path/
      manifest.json        format marker, compaction generation,
                           segment names, tombstoned keys
      base-%05d.seg        the immutable base tier — a v2 single-file
                           snapshot of the *physical* base (including
                           tombstoned rows)
      delta-%05d.seg       the flushed delta tier (absent when empty),
                           same v2 format

    Segment files are never overwritten: each save writes a new save
    generation and the manifest replace is atomic, so a crash mid-save
    leaves the previous manifest fully loadable; superseded segments
    are deleted only after the new manifest is durable.  A re-save into
    the directory an index was loaded from reuses the (immutable) base
    segment when only the write tiers changed, making incremental saves
    O(delta), not O(N).

``save_ensemble`` picks the layout automatically: clean indexes keep
the single-file v2 format below (and stay readable forever), dynamic
ones get the manifest; ``version=3`` forces the manifest, ``version=2``
/ ``version=1`` refuse dynamic state.  ``load_ensemble`` accepts both
transparently.

Format v2 (current, little-endian) — zero-copy columnar::

    magic   b"LSHE"            4 bytes
    version u32                2
    header  u32 length + JSON  configuration, partitions, key/size
                               tables, backend + partitioner names
    seeds   N x u32 (or i64)   per-signature permutation seed column
    matrix  N x num_perm x u64 all signature hash values, C-order,
                               rows ordered partition-major

The payload is one homogeneous matrix: a load is a single
``np.memmap`` (or ``np.frombuffer``) with **no per-entry
deserialisation**, and because rows are written partition-major every
partition's block is a contiguous zero-copy slice handed straight to
the forests' vectorised ``insert_batch``.  The header records:

* ``partition_rows`` — rows per partition, delimiting the blocks;
* ``partition_max_size`` — the per-partition true-size high-water mark,
  restored verbatim so drifted indexes (clamped inserts, removed
  maxima) answer queries identically after a round trip;
* ``storage`` / ``partitioner`` — the *registry names* of the bucket
  backend and partitioning strategy
  (:func:`repro.lsh.storage.register_storage_backend`,
  :func:`repro.core.partitioner.register_partitioner`), so a loaded
  index keeps the backend it was built with.  Unknown names fail
  loudly; unregistered customs are recorded as ``null`` and require an
  explicit factory override at load time;
* ``seed_dtype`` — ``"<u4"`` normally, escalated to ``"<i8"`` when a
  seed does not fit in 32 bits.

Format v1 (legacy, still readable)::

    magic   b"LSHE"            4 bytes
    version u32                1
    header  u32 length + JSON  configuration + partitions + key table
    payload num_entries x (u32 length + LeanMinHash.serialize() bytes)

v1 files carry no backend/partitioner names (the defaults — or the
load-time overrides — apply) and no ``partition_max_size`` (it is
recomputed from the stored sizes).  Both readers reject files with
trailing bytes after the payload: a truncated-then-concatenated or
doubly-written file must not load "successfully".

Keys are JSON-encoded in the header, so any JSON-representable key
(strings, numbers, or lists/tuples of those) round-trips; tuple keys
are restored as tuples.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import tempfile
from pathlib import Path

import numpy as np

from repro.core.ensemble import LSHEnsemble
from repro.core.partitioner import (
    Partition,
    partitioner_name,
    resolve_partitioner,
)
from repro.kernels import kernel_for_header, kernel_name
from repro.lsh.storage import (
    resolve_storage_backend,
    storage_backend_name,
)
from repro.minhash.lean import LeanMinHash

__all__ = ["save_ensemble", "load_ensemble", "read_header", "FormatError",
           "export_columnar", "import_columnar",
           "pack_snapshot_bytes", "unpack_snapshot"]

_MAGIC = b"LSHE"
_VERSION = 2
_MANIFEST_VERSION = 3
_MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "lshe-dynamic"
_U32 = struct.Struct("<I")


class FormatError(ValueError):
    """The file is not a valid serialised LSH Ensemble."""


def _fsync_dir(path: Path) -> None:
    """Flush a directory's entries to disk (rename durability)."""
    dir_fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _process_umask() -> int:
    """The current umask, read without mutating process-global state.

    ``os.umask`` can only *probe* by setting, which races with other
    threads creating files; prefer the kernel's race-free report and
    fall back to the probe where /proc is unavailable.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("Umask:"):
                    return int(line.split()[1], 8)
    except (OSError, ValueError, IndexError):
        pass
    umask = os.umask(0)
    os.umask(umask)
    return umask


def _encode_key(key: object) -> object:
    if isinstance(key, tuple):
        return {"__tuple__": [_encode_key(v) for v in key]}
    return key


def _decode_key(key: object) -> object:
    if isinstance(key, dict) and "__tuple__" in key:
        return tuple(_decode_key(v) for v in key["__tuple__"])
    return key


# --------------------------------------------------------------------- #
# Save
# --------------------------------------------------------------------- #


def _has_dynamic_state(index: LSHEnsemble) -> bool:
    return bool(index._tombstones) or (index._delta is not None
                                       and len(index._delta) > 0)


def save_ensemble(index: LSHEnsemble, path: str | Path,
                  version: int | None = None) -> None:
    """Serialise a built index to ``path``.

    ``version`` selects the on-disk format:

    * ``None`` (default) — automatic: the generation-numbered manifest
      directory when the index carries dynamic state (delta-tier writes
      or tombstones) or ``path`` is already a manifest directory; the
      single-file columnar v2 format otherwise.
    * ``3`` — always the manifest directory.
    * ``2`` / ``1`` — the single-file columnar / legacy per-entry
      formats; both refuse dynamic state (``rebalance()`` first, or let
      the automatic mode write a manifest).
    """
    # Saving reads every tier; hold the index's mutation/query lock so
    # a concurrent insert/remove/rebalance (now supported — the serving
    # layer mutates live indexes) cannot tear the snapshot.
    with index.locked():
        if index.is_empty():
            raise ValueError("refusing to save an empty index")
        path = Path(path)
        dynamic = _has_dynamic_state(index)
        if version is None:
            version = (_MANIFEST_VERSION if dynamic or path.is_dir()
                       else _VERSION)
        if version == _MANIFEST_VERSION:
            _save_manifest(index, path)
            return
        if dynamic:
            raise ValueError(
                "index has delta-tier writes or tombstones; call "
                "rebalance() first or save as a dynamic manifest "
                "(version=3)")
        if version == 1:
            _atomic_write(path, lambda fh: _save_v1(index, fh))
        elif version == 2:
            _atomic_write(path, lambda fh: _save_v2(index, fh))
        else:
            raise ValueError("unsupported save version %d" % version)


def _atomic_write(path: str | Path, writer) -> None:
    """Write via a temp file + rename so saves never corrupt ``path``.

    Saving *over* an existing snapshot must not truncate it in place:
    the index being saved may hold memory-mapped signature rows aliasing
    that very file (a load_ensemble → save_ensemble round trip), and
    in-place truncation would fault those pages mid-write.  The rename
    also makes saves crash-atomic.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent) or ".",
                               prefix=path.name + ".", suffix=".tmp")
    try:
        # mkstemp creates 0600 files; restore the umask-derived mode a
        # plain open(path, "wb") would have produced, so snapshots stay
        # readable by the users the deployment's umask intends.
        os.chmod(tmp, 0o666 & ~_process_umask())
        with os.fdopen(fd, "wb") as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _base_header(index: LSHEnsemble) -> dict:
    return {
        "threshold": index.threshold,
        "num_perm": index.num_perm,
        "num_partitions": index.num_partitions,
        "num_trees": index.num_trees,
        "max_depth": index.max_depth,
        "partitions": [[p.lower, p.upper] for p in index.partitions],
        # The kernel travels by *registry name* (null for unregistered
        # customs) and is advisory: backends are bit-identical, so a
        # loader missing the named backend falls back rather than
        # failing.  ``bbit`` is NOT advisory — packed bucket keys only
        # reproduce when the loaded index truncates bands identically.
        "kernel": kernel_name(index._kernel),
        "bbit": index.bbit,
    }


def _write_header(fh, version: int, header: dict) -> None:
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    fh.write(_MAGIC)
    fh.write(_U32.pack(version))
    fh.write(_U32.pack(len(header_bytes)))
    fh.write(header_bytes)


def _save_v1(index: LSHEnsemble, fh) -> None:
    keys = list(index.keys())
    header = _base_header(index)
    header["keys"] = [_encode_key(k) for k in keys]
    header["sizes"] = [index.size_of(k) for k in keys]
    _write_header(fh, 1, header)
    for key in keys:
        blob = index.get_signature(key).serialize()
        fh.write(_U32.pack(len(blob)))
        fh.write(blob)


def _columnar_export_state(index: LSHEnsemble) -> tuple[dict, list]:
    """Partition-major ordering + header shared by the v2 file writer
    and the in-memory exporter (:func:`export_columnar`).

    Groups keys partition-major (stable within a partition) so every
    partition's rows land contiguous and load as views; the routing
    reuses the index's own vectorised clamp + assign pass.  Keys come
    from the *physical* base tier — for a dynamic index this includes
    tombstoned rows (the manifest carries the tombstones).  Returns
    ``(header, signatures)`` with ``signatures`` row-aligned to
    ``header["keys"]`` (keys raw, not JSON-encoded — the file writer
    encodes; bit-parity of the two export paths is structural because
    both consume this one ordering).
    """
    with index.locked():
        partitions = index.partitions
        lo, hi = partitions[0].lower, partitions[-1].upper - 1
        # Resolve any pending lazy live-max recompute so the header
        # records the exact (non-inflated) per-partition tuning bounds.
        index._resolve_live_max_locked()
        all_keys = list(index._sizes)
        sizes = np.fromiter((index._sizes[k] for k in all_keys),
                            dtype=np.int64, count=len(all_keys))
        routed = index._assign_partitions(np.clip(sizes, lo, hi))
        order = np.argsort(routed, kind="stable")
        order_list = order.tolist()
        # `routed` already names each key's forest; fetching through it
        # avoids re-deriving the route per key (a clamp + linear
        # partition scan) inside index.get_signature.
        forests = index._forests
        signatures = [forests[int(routed[j])].get_signature(all_keys[j])
                      for j in order_list]
        header = _base_header(index)
        header.update({
            "keys": [all_keys[j] for j in order_list],
            "sizes": sizes[order].tolist(),
            "partition_rows": np.bincount(
                routed, minlength=len(partitions)).tolist(),
            "partition_max_size": list(index._partition_max_size),
            "generation": index._generation,
            "mutation_epoch": index._mutation_epoch,
            "auto_rebalance_at": index.auto_rebalance_at,
            "baseline_depth_cv": index._baseline_depth_cv,
            "baseline_skew": index._baseline_skew,
        })
        return header, signatures


def _restore_recorded_state(index: LSHEnsemble, header: dict) -> None:
    """Reapply the versioning/drift fields a columnar header records."""
    with index.locked():
        index._generation = int(header.get("generation", 0))
        index._mutation_epoch = int(header.get("mutation_epoch", 0))
        if header.get("baseline_depth_cv") is not None:
            index._baseline_depth_cv = float(header["baseline_depth_cv"])
        if header.get("baseline_skew") is not None:
            index._baseline_skew = float(header["baseline_skew"])


def _save_v2(index: LSHEnsemble, fh) -> None:
    header, signatures = _columnar_export_state(index)
    seeds = np.asarray([sig.seed for sig in signatures], dtype=np.int64)
    seed_dtype = ("<u4" if seeds.size == 0
                  or (0 <= seeds.min() and seeds.max() < 2 ** 32)
                  else "<i8")
    header["keys"] = [_encode_key(k) for k in header["keys"]]
    header.update({
        "storage": storage_backend_name(index._storage_factory),
        "partitioner": partitioner_name(index._partitioner),
        "seed_dtype": seed_dtype,
    })
    _write_header(fh, 2, header)
    fh.write(memoryview(np.ascontiguousarray(
        seeds.astype(seed_dtype))).cast("B"))
    # Stream the matrix in bounded chunks (~8 MB of staging) rather
    # than materialising the whole payload — and a tobytes() copy of
    # it — in RAM; at the paper's scale the payload is far larger than
    # any sensible staging buffer.
    rows_per_chunk = max(1, 8_000_000 // (index.num_perm * 8))
    staging = np.empty((rows_per_chunk, index.num_perm), dtype="<u8")
    for start in range(0, len(signatures), rows_per_chunk):
        block = signatures[start:start + rows_per_chunk]
        for i, sig in enumerate(block):
            staging[i] = sig.hashvalues
        fh.write(memoryview(staging[:len(block)]).cast("B"))


# --------------------------------------------------------------------- #
# In-memory columnar round trip (process-pool task payloads)
# --------------------------------------------------------------------- #


def export_columnar(index: LSHEnsemble) -> dict:
    """The v2 payload of a *physically clean* index as in-memory arrays.

    Returns ``{"header": dict, "seeds": int64 array, "matrix": uint64
    (n, num_perm) array}`` with rows ordered partition-major — exactly
    the bytes :func:`save_ensemble` would write at ``version=2``, minus
    the file.  The whole dict is picklable, which is what the
    process-pool executor (:mod:`repro.parallel.procpool`) relies on to
    ship a dynamic index's small delta tier to worker processes
    without a disk round trip; :func:`import_columnar` rebuilds a
    bit-identical index (same partitions, tuning bounds, signatures).

    Unlike the file writer the header carries no backend/partitioner
    registry names: the importer supplies factories explicitly (workers
    use the factories of the base index the delta rides on).
    """
    with index.locked():
        if _has_dynamic_state(index):
            raise ValueError(
                "export_columnar requires a physically clean index; "
                "rebalance() first (the delta tier's inner index is "
                "always clean)")
        if not index.partitions:
            raise ValueError("cannot export an unbuilt index")
        header, signatures = _columnar_export_state(index)
        matrix = np.empty((len(signatures), index.num_perm),
                          dtype=np.uint64)
        seeds = np.empty(len(signatures), dtype=np.int64)
        for row, signature in enumerate(signatures):
            matrix[row] = signature.hashvalues
            seeds[row] = signature.seed
        return {"header": header, "seeds": seeds, "matrix": matrix}


def import_columnar(spec: dict, *, storage_factory=None,
                    partitioner=None, kernel=None) -> LSHEnsemble:
    """Rebuild an index from :func:`export_columnar` output.

    The factories default to the :class:`LSHEnsemble` constructor
    defaults; pass the base index's own ``storage_factory`` /
    ``partitioner`` (and ``kernel``) to keep a shipped delta tier on
    the same backend as the base index it rides on.
    """
    try:
        header = spec["header"]
        keys = list(header["keys"])
        sizes = [int(s) for s in header["sizes"]]
        partitions = [Partition(lo, hi) for lo, hi in header["partitions"]]
        partition_rows = [int(c) for c in header["partition_rows"]]
        partition_max_size = [int(m) for m in header["partition_max_size"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError("corrupt columnar spec: %s" % exc) from exc
    if len(keys) != len(sizes):
        raise FormatError("key/size table length mismatch")
    if len(set(keys)) != len(keys):
        raise FormatError("duplicate keys in columnar spec")
    matrix = np.ascontiguousarray(spec["matrix"], dtype=np.uint64)
    matrix.setflags(write=False)
    seeds = np.asarray(spec["seeds"], dtype=np.int64)
    index = _make_ensemble(header, storage_factory, partitioner, kernel)
    with index.locked():
        index._restore_columnar_locked(partitions, keys, sizes, matrix,
                                       seeds, partition_rows,
                                       partition_max_size)
    _restore_recorded_state(index, header)
    return index


# --------------------------------------------------------------------- #
# Dynamic manifest (base + delta + tombstones)
# --------------------------------------------------------------------- #


def _scan_save_generation(root: Path) -> int:
    """Next unused segment save-generation in ``root``."""
    generation = -1
    for existing in root.glob("*.seg"):
        fields = existing.stem.split("-")
        if len(fields) == 2 and fields[1].isdigit():
            generation = max(generation, int(fields[1]))
    return generation + 1


def _save_manifest(index: LSHEnsemble, root: Path) -> None:
    if root.exists() and not root.is_dir():
        # Converting a single-file snapshot in place: stage the whole
        # manifest tree beside it, move the old file aside, and swap.
        # The file->directory conversion cannot be one atomic rename,
        # but no state of the sequence destroys data: a crash in the
        # tiny window between the two renames leaves both the staged
        # tree and the old snapshot (as <name>.pre-manifest) on disk.
        parent = root.parent
        tmp = Path(tempfile.mkdtemp(dir=str(parent) or ".",
                                    prefix=root.name + ".", suffix=".tmpdir"))
        backup = root.with_name(root.name + ".pre-manifest")
        try:
            os.chmod(tmp, 0o777 & ~_process_umask())
            base_name = _write_manifest_tree(index, tmp, 0)
            os.replace(root, backup)
            try:
                os.rename(tmp, root)
            except BaseException:
                os.replace(backup, root)
                raise
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        # The staging path recorded during the tree write died with the
        # rename; repoint at the final segment so later re-saves into
        # this directory can reuse it.
        index._base_source = str((root / base_name).resolve())
        _fsync_dir(parent)
        os.unlink(backup)
        return
    root.mkdir(parents=True, exist_ok=True)
    if any(root.iterdir()):
        # Never adopt (and then clean segments out of) a non-empty
        # directory that is not already a dynamic manifest — it could
        # be a ShardedEnsemble snapshot or unrelated data.
        _read_manifest(root)
    _write_manifest_tree(index, root, _scan_save_generation(root))


def _write_manifest_tree(index: LSHEnsemble, root: Path,
                         generation: int) -> str:
    """Write segments + manifest into ``root`` (an existing directory).

    Ordering matters for crash safety: segment files become durable
    directory entries before the manifest can name them, and segments
    the old manifest referenced are deleted only after the replacement
    manifest is durable.  Returns the base segment's name.
    """
    delta_inner = (index._delta.inner_index()
                   if index._delta is not None else None)
    base_name = None
    if index._base_source is not None:
        # Loaded from this very directory and the base tier is still the
        # same immutable segment: reuse it instead of rewriting O(N)
        # signature bytes.
        source = Path(index._base_source)
        try:
            if source.parent.resolve() == root.resolve() \
                    and source.is_file():
                base_name = source.name
        except OSError:
            base_name = None
    if base_name is None:
        base_name = "base-%05d.seg" % generation
        _atomic_write(root / base_name, lambda fh: _save_v2(index, fh))
        index._base_source = str((root / base_name).resolve())
    delta_name = None
    if delta_inner is not None:
        delta_name = "delta-%05d.seg" % generation
        _atomic_write(root / delta_name,
                      lambda fh: _save_v2(delta_inner, fh))
    manifest = {
        "format": _MANIFEST_FORMAT,
        "version": _MANIFEST_VERSION,
        "generation": index._generation,
        "base": base_name,
        "delta": delta_name,
        "tombstones": [_encode_key(k)
                       for k in sorted(index._tombstones, key=str)],
        # Mutable without a base rewrite, so the (always rewritten)
        # manifest is their authoritative home — a reused base
        # segment's header may hold stale values.
        "auto_rebalance_at": index.auto_rebalance_at,
        "mutation_epoch": index._mutation_epoch,
    }
    payload = json.dumps(manifest, indent=2).encode("utf-8")
    _fsync_dir(root)
    _atomic_write(root / _MANIFEST_NAME, lambda fh: fh.write(payload))
    _fsync_dir(root)
    for stale in root.glob("*.seg"):
        if stale.name not in (base_name, delta_name):
            stale.unlink()
    return base_name


# --------------------------------------------------------------------- #
# Load
# --------------------------------------------------------------------- #


def read_header(path: str | Path) -> dict:
    """The decoded JSON header of a saved index, plus ``"version"``.

    Cheap metadata inspection (``cli info`` uses it to report the
    on-disk format) — no payload bytes are touched.  For a dynamic
    manifest directory the base segment's header is returned, with
    ``"version"`` set to 3 plus ``"generation"``, ``"tombstones"`` (a
    count) and ``"delta_keys"``.
    """
    path = Path(path)
    if path.is_dir():
        manifest = _read_manifest(path)
        try:
            header = read_header(path / manifest["base"])
            delta_name = manifest.get("delta")
            delta_keys = (len(read_header(path / delta_name)["keys"])
                          if delta_name else 0)
        except FileNotFoundError as exc:
            raise FormatError(
                "manifest names segment %s but it is missing"
                % Path(exc.filename).name) from None
        header["version"] = _MANIFEST_VERSION
        header["generation"] = int(manifest.get("generation", 0))
        if "mutation_epoch" in manifest:
            # Manifest wins: a reused base segment's header is stale.
            header["mutation_epoch"] = int(manifest["mutation_epoch"])
        header["tombstones"] = len(manifest.get("tombstones") or [])
        header["delta_keys"] = delta_keys
        return header
    with open(path, "rb") as fh:
        version, header, _ = _read_preamble(fh)
    header["version"] = version
    return header


def _read_manifest(root: Path) -> dict:
    try:
        manifest = json.loads(
            (root / _MANIFEST_NAME).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FormatError(
            "%s is not a saved LSH Ensemble (no %s)"
            % (root, _MANIFEST_NAME)) from None
    except json.JSONDecodeError as exc:
        raise FormatError("corrupt manifest: %s" % exc) from exc
    if isinstance(manifest, dict) and "shards" in manifest:
        raise FormatError(
            "%s holds a saved ShardedEnsemble; load it with "
            "repro.parallel.ShardedEnsemble.load" % root)
    if (not isinstance(manifest, dict)
            or manifest.get("format") != _MANIFEST_FORMAT):
        raise FormatError(
            "unrecognised manifest format %r"
            % (manifest.get("format") if isinstance(manifest, dict)
               else manifest))
    if not isinstance(manifest.get("base"), str):
        raise FormatError("corrupt manifest: missing base segment name")
    return manifest


def _read_preamble(fh) -> tuple[int, dict, int]:
    """(version, header, payload offset) — shared by both readers."""
    magic = fh.read(4)
    if magic != _MAGIC:
        raise FormatError("bad magic %r; not an LSH Ensemble file" % magic)
    raw = fh.read(_U32.size)
    if len(raw) != _U32.size:
        raise FormatError("truncated file: missing version field")
    (version,) = _U32.unpack(raw)
    if version not in (1, 2):
        raise FormatError("unsupported format version %d" % version)
    raw = fh.read(_U32.size)
    if len(raw) != _U32.size:
        raise FormatError("truncated file: missing header length")
    (header_len,) = _U32.unpack(raw)
    header_bytes = fh.read(header_len)
    if len(header_bytes) != header_len:
        raise FormatError("truncated header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError("corrupt header: %s" % exc) from exc
    return version, header, 4 + 2 * _U32.size + header_len


def _resolve_factories(header: dict, storage_factory, partitioner,
                       version: int):
    """Thread the recorded backend/partitioner through, or fail loudly.

    Explicit load-time overrides win.  Otherwise v2 headers name the
    backend in the registry (unknown names and unregistered customs
    raise — never silently fall back to the defaults); v1 headers
    predate the registry, so the constructor defaults apply.
    """
    if storage_factory is None:
        name = header.get("storage")
        if name is not None:
            try:
                storage_factory = resolve_storage_backend(name)
            except KeyError as exc:
                raise FormatError(str(exc)) from exc
        elif version >= 2:
            raise FormatError(
                "index was saved with an unregistered storage backend; "
                "pass storage_factory= to load_ensemble (or register the "
                "backend before saving)")
    if partitioner is None:
        name = header.get("partitioner")
        if name is not None:
            try:
                partitioner = resolve_partitioner(name)
            except KeyError as exc:
                raise FormatError(str(exc)) from exc
        elif version >= 2:
            raise FormatError(
                "index was saved with an unregistered partitioner; pass "
                "partitioner= to load_ensemble (or register the "
                "partitioner before saving)")
    return storage_factory, partitioner


def _make_ensemble(header: dict, storage_factory, partitioner,
                   kernel=None) -> LSHEnsemble:
    kwargs = {}
    if storage_factory is not None:
        kwargs["storage_factory"] = storage_factory
    if partitioner is not None:
        kwargs["partitioner"] = partitioner
    if header.get("auto_rebalance_at") is not None:
        kwargs["auto_rebalance_at"] = float(header["auto_rebalance_at"])
    return LSHEnsemble(
        threshold=header["threshold"],
        num_perm=header["num_perm"],
        num_partitions=header["num_partitions"],
        num_trees=header["num_trees"],
        max_depth=header["max_depth"],
        kernel=kernel_for_header(header.get("kernel"), kernel),
        bbit=header.get("bbit"),
        **kwargs,
    )


def load_ensemble(path: str | Path, *, storage_factory=None,
                  partitioner=None, kernel=None,
                  mmap: bool = True) -> LSHEnsemble:
    """Load an index previously written by :func:`save_ensemble`.

    The returned index answers queries identically to the saved one
    (signatures are bit-exact; bucket structures re-derive
    deterministically from them with the saved partition bounds and
    high-water marks).  v2 snapshots load through one numpy view of the
    signature matrix — ``mmap=True`` (the default) maps it from disk so
    signature pages are only faulted in as queries touch them, and the
    per-depth bucket tables materialise lazily on first probe.

    Parameters
    ----------
    storage_factory, partitioner:
        Overrides for the bucket backend / partitioning strategy.  By
        default the names recorded in a v2 header are resolved through
        the registries; an unknown or unrecorded name raises
        :class:`FormatError` rather than silently reverting to the
        defaults.  v1 files carry no names, so the constructor defaults
        apply unless overridden here.
    kernel:
        Hot-loop backend override (name or :class:`~repro.kernels.Kernel`
        instance).  Unlike the factories, the header-recorded kernel
        name is advisory: precedence is this argument, then the
        ``REPRO_KERNEL`` environment, then the header name, then the
        default — and an unavailable header name (e.g. numba on a box
        without it) falls back silently, because every backend is
        bit-identical.
    mmap:
        Memory-map the v2 signature matrix instead of reading it into
        memory (ignored for v1 files; for a manifest, applies to the
        base segment — the small mutable delta segment is always read
        into memory).
    """
    path = Path(path)
    if path.is_dir():
        return _load_manifest(path, storage_factory, partitioner, kernel,
                              mmap)
    with open(path, "rb") as fh:
        version, header, offset = _read_preamble(fh)
        if version == 1:
            return _load_v1(fh, header, storage_factory, partitioner,
                            kernel)
        return _load_v2(fh, path, header, offset, storage_factory,
                        partitioner, kernel, mmap)


def _load_manifest(root: Path, storage_factory, partitioner, kernel,
                   mmap: bool) -> LSHEnsemble:
    manifest = _read_manifest(root)
    base_path = root / manifest["base"]
    try:
        index = load_ensemble(base_path, storage_factory=storage_factory,
                              partitioner=partitioner, kernel=kernel,
                              mmap=mmap)
    except FileNotFoundError:
        raise FormatError(
            "manifest names base segment %s but it is missing"
            % manifest["base"]) from None
    delta_index = None
    delta_name = manifest.get("delta")
    if delta_name is not None:
        try:
            delta_index = load_ensemble(
                root / delta_name, storage_factory=storage_factory,
                partitioner=partitioner, kernel=kernel, mmap=False)
        except FileNotFoundError:
            raise FormatError(
                "manifest names delta segment %s but it is missing"
                % delta_name) from None
    tombstones = [_decode_key(k)
                  for k in manifest.get("tombstones") or []]
    if len(set(tombstones)) != len(tombstones):
        raise FormatError("duplicate tombstones in manifest")
    missing = [k for k in tombstones if k not in index._sizes]
    if missing:
        raise FormatError(
            "tombstone %r does not name a base-tier key" % (missing[0],))
    if delta_index is not None:
        tombstone_set = set(tombstones)
        for key in delta_index._sizes:
            if key in index._sizes and key not in tombstone_set:
                raise FormatError(
                    "delta key %r is still live in the base tier"
                    % (key,))
    with index.locked():
        index._attach_dynamic_state_locked(
            tombstones, delta_index, int(manifest.get("generation", 0)))
        # The manifest (always rewritten) is authoritative over the
        # base segment's header, which may be a reused file with a
        # stale epoch.
        if "mutation_epoch" in manifest:
            index._mutation_epoch = int(manifest["mutation_epoch"])
    if "auto_rebalance_at" in manifest:
        value = manifest["auto_rebalance_at"]
        if value is not None:
            try:
                value = float(value)
            except (TypeError, ValueError) as exc:
                raise FormatError(
                    "corrupt manifest: bad auto_rebalance_at %r"
                    % (value,)) from exc
            if not 0.0 < value <= 1.0:
                raise FormatError(
                    "corrupt manifest: auto_rebalance_at %r is outside "
                    "(0, 1]" % (value,))
        index.auto_rebalance_at = value
    index._base_source = str(base_path.resolve())
    return index


def _header_entry_tables(header: dict) -> tuple[list, list]:
    keys = [_decode_key(k) for k in header["keys"]]
    sizes = header["sizes"]
    if len(keys) != len(sizes):
        raise FormatError("key/size table length mismatch")
    if len(set(keys)) != len(keys):
        raise FormatError("duplicate keys in header")
    return keys, sizes


def _load_v1(fh, header: dict, storage_factory, partitioner,
             kernel=None) -> LSHEnsemble:
    storage_factory, partitioner = _resolve_factories(
        header, storage_factory, partitioner, version=1)
    keys, sizes = _header_entry_tables(header)
    entries = []
    for key, size in zip(keys, sizes):
        raw = fh.read(_U32.size)
        if len(raw) != _U32.size:
            raise FormatError("truncated payload")
        (blob_len,) = _U32.unpack(raw)
        blob = fh.read(blob_len)
        if len(blob) != blob_len:
            raise FormatError("truncated signature blob")
        entries.append((key, LeanMinHash.deserialize(blob), size))
    if fh.read(1):
        raise FormatError(
            "trailing bytes after the last signature blob; "
            "the file is corrupt (truncated-then-concatenated or "
            "doubly written)")
    index = _make_ensemble(header, storage_factory, partitioner, kernel)
    partitions = [Partition(lo, hi) for lo, hi in header["partitions"]]
    index.index(entries, partitions=partitions)
    return index


def _load_v2(fh, path, header: dict, offset: int, storage_factory,
             partitioner, kernel, mmap: bool) -> LSHEnsemble:
    storage_factory, partitioner = _resolve_factories(
        header, storage_factory, partitioner, version=2)
    keys, sizes = _header_entry_tables(header)
    partitions = [Partition(lo, hi) for lo, hi in header["partitions"]]
    try:
        partition_rows = [int(c) for c in header["partition_rows"]]
        partition_max_size = [int(m) for m in header["partition_max_size"]]
        seed_dtype = np.dtype(header.get("seed_dtype", "<u4"))
        num_perm = int(header["num_perm"])
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError("corrupt v2 header: %s" % exc) from exc
    n = len(keys)
    if sum(partition_rows) != n:
        raise FormatError(
            "partition_rows sum %d does not match %d entries"
            % (sum(partition_rows), n))
    if any(count < 0 for count in partition_rows):
        raise FormatError("negative partition_rows entry")
    if (len(partition_rows) != len(partitions)
            or len(partition_max_size) != len(partitions)):
        raise FormatError("per-partition table length mismatch")
    seeds_nbytes = n * seed_dtype.itemsize
    matrix_nbytes = n * num_perm * 8
    expected = offset + seeds_nbytes + matrix_nbytes
    actual = os.fstat(fh.fileno()).st_size
    if actual < expected:
        raise FormatError(
            "truncated payload: expected %d bytes, file has %d"
            % (expected, actual))
    if actual > expected:
        raise FormatError(
            "trailing bytes after the signature matrix (%d extra); "
            "the file is corrupt (truncated-then-concatenated or "
            "doubly written)" % (actual - expected))
    if n == 0 and not partitions:
        return _make_ensemble(header, storage_factory, partitioner, kernel)
    if n == 0:
        # A dynamic index whose base tier emptied out entirely (every
        # built key tombstoned away) still carries its partition
        # structure; restore it so the write tiers can be reattached.
        matrix = np.empty((0, num_perm), dtype="<u8")
        seeds = np.empty(0, dtype=np.int64)
    else:
        seeds_raw = fh.read(seeds_nbytes)
        if len(seeds_raw) != seeds_nbytes:
            raise FormatError("truncated seed column")
        seeds = np.frombuffer(seeds_raw, dtype=seed_dtype).astype(np.int64)
        matrix_offset = offset + seeds_nbytes
        if mmap:
            matrix = np.memmap(path, dtype="<u8", mode="r",
                               offset=matrix_offset, shape=(n, num_perm))
        else:
            payload = fh.read(matrix_nbytes)
            matrix = np.frombuffer(payload,
                                   dtype="<u8").reshape(n, num_perm)
    index = _make_ensemble(header, storage_factory, partitioner, kernel)
    with index.locked():
        index._restore_columnar_locked(partitions, keys, sizes, matrix,
                                       seeds, partition_rows,
                                       partition_max_size)
    _restore_recorded_state(index, header)
    # The file IS the physical base tier: remember it so manifest
    # re-saves and the process-pool executor can hand the same segment
    # around instead of rewriting an identical copy.  Anything that
    # changes the physical base (rebalance, physical routing) clears
    # it; a manifest load overrides it with the base segment's path.
    index._base_source = str(Path(path).resolve())
    return index


# --------------------------------------------------------------------- #
# Snapshot shipping (replica bootstrap over the wire)
# --------------------------------------------------------------------- #

_SNAPSHOT_MAGIC = b"LSHESNAP"
_SNAPSHOT_VERSION = 1


def pack_snapshot_bytes(index) -> bytes:
    """Pack an index's full on-disk state into one byte string.

    This is the payload of the shard-node ``GET /snapshot`` endpoint:
    the index is saved through its normal persistence path (single-file
    v2, dynamic manifest directory, or a sharded cluster directory —
    whichever :func:`save_ensemble` / ``ShardedEnsemble.save`` would
    produce) into a scratch directory, and the resulting file set is
    archived as::

        b"LSHESNAP" + u32 manifest_len + manifest_json + file bytes...

    where the manifest records ``{"version", "kind": "file"|"dir",
    "files": [[relative_path, size], ...]}`` and the file bytes are
    concatenated in manifest order.  :func:`unpack_snapshot` restores
    the identical file set, so a replica loading it answers queries
    bit-identically to the donor.
    """
    with tempfile.TemporaryDirectory(prefix="lshe-snapshot-") as tmp:
        root = Path(tmp) / "index"
        if hasattr(index, "shards") and hasattr(index, "save"):
            index.save(root)          # sharded cluster directory
        else:
            save_ensemble(index, root)  # v2 file or manifest dir
        if root.is_dir():
            kind = "dir"
            paths = sorted(p for p in root.rglob("*") if p.is_file())
            rels = [p.relative_to(root).as_posix() for p in paths]
        else:
            kind = "file"
            paths = [root]
            rels = ["index.lshe"]
        entries = []
        blobs = []
        for rel, p in zip(rels, paths):
            blob = p.read_bytes()
            entries.append([rel, len(blob)])
            blobs.append(blob)
        manifest = json.dumps(
            {"version": _SNAPSHOT_VERSION, "kind": kind,
             "files": entries},
            separators=(",", ":")).encode("utf-8")
        return b"".join([_SNAPSHOT_MAGIC, _U32.pack(len(manifest)),
                         manifest] + blobs)


def unpack_snapshot(data: bytes, dest: str | Path) -> Path:
    """Restore a :func:`pack_snapshot_bytes` archive under ``dest``.

    Returns the path to load the index from: ``dest/index.lshe`` for a
    single-file snapshot, ``dest/index`` (a directory) otherwise —
    feed it to :func:`load_ensemble` / ``ShardedEnsemble.load`` (the
    CLI's serving loader auto-detects which).
    """
    head = len(_SNAPSHOT_MAGIC)
    if data[:head] != _SNAPSHOT_MAGIC:
        raise FormatError("not a snapshot archive (bad magic)")
    if len(data) < head + _U32.size:
        raise FormatError("truncated snapshot header")
    (manifest_len,) = _U32.unpack_from(data, head)
    offset = head + _U32.size
    try:
        manifest = json.loads(data[offset:offset + manifest_len])
    except json.JSONDecodeError as exc:
        raise FormatError("corrupt snapshot manifest: %s" % exc) from exc
    offset += manifest_len
    if manifest.get("version") != _SNAPSHOT_VERSION:
        raise FormatError("unsupported snapshot version %r"
                          % manifest.get("version"))
    kind = manifest.get("kind")
    files = manifest.get("files")
    if kind not in ("file", "dir") or not isinstance(files, list) \
            or not files:
        raise FormatError("corrupt snapshot manifest")
    dest = Path(dest)
    root = dest / ("index.lshe" if kind == "file" else "index")
    if kind == "dir":
        root.mkdir(parents=True, exist_ok=True)
    else:
        dest.mkdir(parents=True, exist_ok=True)
    for entry in files:
        if (not isinstance(entry, list) or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], int) or entry[1] < 0):
            raise FormatError("corrupt snapshot file table")
        rel, size = entry
        parts = Path(rel).parts
        # The manifest names untrusted relative paths; never let one
        # escape the destination directory.
        if Path(rel).is_absolute() or ".." in parts:
            raise FormatError("snapshot path %r escapes the "
                              "destination" % rel)
        blob = data[offset:offset + size]
        if len(blob) != size:
            raise FormatError("truncated snapshot payload at %r" % rel)
        offset += size
        target = root if kind == "file" else root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(blob)
    if offset != len(data):
        raise FormatError("trailing bytes after snapshot payload")
    return root
