"""Index persistence: save and load a built LSH Ensemble.

At the paper's scale an index takes hours to build (Table 4: ~105 min
for 262M domains), so rebuilding on every process start is a
non-starter.  This module serialises the *entries* of an index — the
``(key, signature, size)`` triples plus the configuration and partition
bounds — in a compact, versioned binary format, and rebuilds the bucket
structures on load (bucket structures re-derive deterministically from
signatures, so persisting them would only trade CPU for several times
the disk and I/O).

Format (little-endian):

    magic   b"LSHE"            4 bytes
    version u32                currently 1
    header  u32 length + JSON  configuration + partitions + key table
    payload num_entries x (u32 length + LeanMinHash.serialize() bytes)

Keys are JSON-encoded in the header, so any JSON-representable key
(strings, numbers, or lists/tuples of those) round-trips; tuple keys are
restored as tuples.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from repro.core.ensemble import LSHEnsemble
from repro.core.partitioner import Partition
from repro.minhash.lean import LeanMinHash

__all__ = ["save_ensemble", "load_ensemble", "FormatError"]

_MAGIC = b"LSHE"
_VERSION = 1
_U32 = struct.Struct("<I")


class FormatError(ValueError):
    """The file is not a valid serialised LSH Ensemble."""


def _encode_key(key: object) -> object:
    if isinstance(key, tuple):
        return {"__tuple__": [_encode_key(v) for v in key]}
    return key


def _decode_key(key: object) -> object:
    if isinstance(key, dict) and "__tuple__" in key:
        return tuple(_decode_key(v) for v in key["__tuple__"])
    return key


def save_ensemble(index: LSHEnsemble, path: str | Path) -> None:
    """Serialise a built index to ``path``."""
    if index.is_empty():
        raise ValueError("refusing to save an empty index")
    keys = list(index.keys())
    header = {
        "threshold": index.threshold,
        "num_perm": index.num_perm,
        "num_partitions": index.num_partitions,
        "num_trees": index.num_trees,
        "max_depth": index.max_depth,
        "partitions": [[p.lower, p.upper] for p in index.partitions],
        "keys": [_encode_key(k) for k in keys],
        "sizes": [index.size_of(k) for k in keys],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(_U32.pack(_VERSION))
        fh.write(_U32.pack(len(header_bytes)))
        fh.write(header_bytes)
        for key in keys:
            blob = index.get_signature(key).serialize()
            fh.write(_U32.pack(len(blob)))
            fh.write(blob)


def load_ensemble(path: str | Path) -> LSHEnsemble:
    """Load an index previously written by :func:`save_ensemble`.

    The returned index answers queries identically to the saved one
    (signatures are bit-exact; bucket structures are rebuilt
    deterministically from them with the saved partition bounds).
    """
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise FormatError("bad magic %r; not an LSH Ensemble file"
                              % magic)
        (version,) = _U32.unpack(fh.read(4))
        if version != _VERSION:
            raise FormatError("unsupported format version %d" % version)
        (header_len,) = _U32.unpack(fh.read(4))
        try:
            header = json.loads(fh.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FormatError("corrupt header: %s" % exc) from exc
        keys = [_decode_key(k) for k in header["keys"]]
        sizes = header["sizes"]
        if len(keys) != len(sizes):
            raise FormatError("key/size table length mismatch")
        entries = []
        for key, size in zip(keys, sizes):
            raw = fh.read(_U32.size)
            if len(raw) != _U32.size:
                raise FormatError("truncated payload")
            (blob_len,) = _U32.unpack(raw)
            blob = fh.read(blob_len)
            if len(blob) != blob_len:
                raise FormatError("truncated signature blob")
            entries.append((key, LeanMinHash.deserialize(blob), size))
    index = LSHEnsemble(
        threshold=header["threshold"],
        num_perm=header["num_perm"],
        num_partitions=header["num_partitions"],
        num_trees=header["num_trees"],
        max_depth=header["max_depth"],
    )
    partitions = [Partition(lo, hi) for lo, hi in header["partitions"]]
    index.index(entries, partitions=partitions)
    return index
