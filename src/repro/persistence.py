"""Index persistence: save and load a built LSH Ensemble.

At the paper's scale an index takes hours to build (Table 4: ~105 min
for 262M domains), so rebuilding on every process start is a
non-starter.  This module serialises a built index in a compact,
versioned binary format and rematerialises it on load.  Bucket
structures re-derive deterministically from the signatures, so they are
never persisted — only the entries, the configuration, and the
partition state.

Format v2 (current, little-endian) — zero-copy columnar::

    magic   b"LSHE"            4 bytes
    version u32                2
    header  u32 length + JSON  configuration, partitions, key/size
                               tables, backend + partitioner names
    seeds   N x u32 (or i64)   per-signature permutation seed column
    matrix  N x num_perm x u64 all signature hash values, C-order,
                               rows ordered partition-major

The payload is one homogeneous matrix: a load is a single
``np.memmap`` (or ``np.frombuffer``) with **no per-entry
deserialisation**, and because rows are written partition-major every
partition's block is a contiguous zero-copy slice handed straight to
the forests' vectorised ``insert_batch``.  The header records:

* ``partition_rows`` — rows per partition, delimiting the blocks;
* ``partition_max_size`` — the per-partition true-size high-water mark,
  restored verbatim so drifted indexes (clamped inserts, removed
  maxima) answer queries identically after a round trip;
* ``storage`` / ``partitioner`` — the *registry names* of the bucket
  backend and partitioning strategy
  (:func:`repro.lsh.storage.register_storage_backend`,
  :func:`repro.core.partitioner.register_partitioner`), so a loaded
  index keeps the backend it was built with.  Unknown names fail
  loudly; unregistered customs are recorded as ``null`` and require an
  explicit factory override at load time;
* ``seed_dtype`` — ``"<u4"`` normally, escalated to ``"<i8"`` when a
  seed does not fit in 32 bits.

Format v1 (legacy, still readable)::

    magic   b"LSHE"            4 bytes
    version u32                1
    header  u32 length + JSON  configuration + partitions + key table
    payload num_entries x (u32 length + LeanMinHash.serialize() bytes)

v1 files carry no backend/partitioner names (the defaults — or the
load-time overrides — apply) and no ``partition_max_size`` (it is
recomputed from the stored sizes).  Both readers reject files with
trailing bytes after the payload: a truncated-then-concatenated or
doubly-written file must not load "successfully".

Keys are JSON-encoded in the header, so any JSON-representable key
(strings, numbers, or lists/tuples of those) round-trips; tuple keys
are restored as tuples.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
from pathlib import Path

import numpy as np

from repro.core.ensemble import LSHEnsemble
from repro.core.partitioner import (
    Partition,
    partitioner_name,
    resolve_partitioner,
)
from repro.lsh.storage import (
    resolve_storage_backend,
    storage_backend_name,
)
from repro.minhash.lean import LeanMinHash

__all__ = ["save_ensemble", "load_ensemble", "read_header", "FormatError"]

_MAGIC = b"LSHE"
_VERSION = 2
_U32 = struct.Struct("<I")


class FormatError(ValueError):
    """The file is not a valid serialised LSH Ensemble."""


def _process_umask() -> int:
    """The current umask, read without mutating process-global state.

    ``os.umask`` can only *probe* by setting, which races with other
    threads creating files; prefer the kernel's race-free report and
    fall back to the probe where /proc is unavailable.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("Umask:"):
                    return int(line.split()[1], 8)
    except (OSError, ValueError, IndexError):
        pass
    umask = os.umask(0)
    os.umask(umask)
    return umask


def _encode_key(key: object) -> object:
    if isinstance(key, tuple):
        return {"__tuple__": [_encode_key(v) for v in key]}
    return key


def _decode_key(key: object) -> object:
    if isinstance(key, dict) and "__tuple__" in key:
        return tuple(_decode_key(v) for v in key["__tuple__"])
    return key


# --------------------------------------------------------------------- #
# Save
# --------------------------------------------------------------------- #


def save_ensemble(index: LSHEnsemble, path: str | Path,
                  version: int = _VERSION) -> None:
    """Serialise a built index to ``path``.

    ``version`` selects the on-disk format: 2 (default) writes the
    columnar layout above; 1 writes the legacy per-entry blob format
    for compatibility testing.
    """
    if index.is_empty():
        raise ValueError("refusing to save an empty index")
    if version == 1:
        _atomic_write(path, lambda fh: _save_v1(index, fh))
    elif version == 2:
        _atomic_write(path, lambda fh: _save_v2(index, fh))
    else:
        raise ValueError("unsupported save version %d" % version)


def _atomic_write(path: str | Path, writer) -> None:
    """Write via a temp file + rename so saves never corrupt ``path``.

    Saving *over* an existing snapshot must not truncate it in place:
    the index being saved may hold memory-mapped signature rows aliasing
    that very file (a load_ensemble → save_ensemble round trip), and
    in-place truncation would fault those pages mid-write.  The rename
    also makes saves crash-atomic.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent) or ".",
                               prefix=path.name + ".", suffix=".tmp")
    try:
        # mkstemp creates 0600 files; restore the umask-derived mode a
        # plain open(path, "wb") would have produced, so snapshots stay
        # readable by the users the deployment's umask intends.
        os.chmod(tmp, 0o666 & ~_process_umask())
        with os.fdopen(fd, "wb") as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _base_header(index: LSHEnsemble) -> dict:
    return {
        "threshold": index.threshold,
        "num_perm": index.num_perm,
        "num_partitions": index.num_partitions,
        "num_trees": index.num_trees,
        "max_depth": index.max_depth,
        "partitions": [[p.lower, p.upper] for p in index.partitions],
    }


def _write_header(fh, version: int, header: dict) -> None:
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    fh.write(_MAGIC)
    fh.write(_U32.pack(version))
    fh.write(_U32.pack(len(header_bytes)))
    fh.write(header_bytes)


def _save_v1(index: LSHEnsemble, fh) -> None:
    keys = list(index.keys())
    header = _base_header(index)
    header["keys"] = [_encode_key(k) for k in keys]
    header["sizes"] = [index.size_of(k) for k in keys]
    _write_header(fh, 1, header)
    for key in keys:
        blob = index.get_signature(key).serialize()
        fh.write(_U32.pack(len(blob)))
        fh.write(blob)


def _save_v2(index: LSHEnsemble, fh) -> None:
    partitions = index.partitions
    lo, hi = partitions[0].lower, partitions[-1].upper - 1
    # Group keys partition-major (stable within a partition) so every
    # partition's rows land contiguous on disk and load as views; the
    # routing reuses the index's own vectorised clamp + assign pass.
    all_keys = list(index.keys())
    sizes = np.fromiter((index.size_of(k) for k in all_keys),
                        dtype=np.int64, count=len(all_keys))
    routed = index._assign_partitions(np.clip(sizes, lo, hi))
    order = np.argsort(routed, kind="stable").tolist()
    keys = [all_keys[j] for j in order]
    partition_rows = np.bincount(
        routed, minlength=len(partitions)).tolist()
    # `routed` already names each key's forest; fetching through it
    # avoids re-deriving the route per key (a clamp + linear partition
    # scan) inside index.get_signature.
    forests = index._forests
    signatures = [forests[int(routed[j])].get_signature(all_keys[j])
                  for j in order]
    seeds = np.asarray([sig.seed for sig in signatures], dtype=np.int64)
    seed_dtype = ("<u4" if seeds.size == 0
                  or (0 <= seeds.min() and seeds.max() < 2 ** 32)
                  else "<i8")
    header = _base_header(index)
    header.update({
        "keys": [_encode_key(k) for k in keys],
        "sizes": sizes[order].tolist(),
        "partition_rows": partition_rows,
        "partition_max_size": list(index._partition_max_size),
        "storage": storage_backend_name(index._storage_factory),
        "partitioner": partitioner_name(index._partitioner),
        "seed_dtype": seed_dtype,
    })
    _write_header(fh, 2, header)
    fh.write(memoryview(np.ascontiguousarray(
        seeds.astype(seed_dtype))).cast("B"))
    # Stream the matrix in bounded chunks (~8 MB of staging) rather
    # than materialising the whole payload — and a tobytes() copy of
    # it — in RAM; at the paper's scale the payload is far larger than
    # any sensible staging buffer.
    rows_per_chunk = max(1, 8_000_000 // (index.num_perm * 8))
    staging = np.empty((rows_per_chunk, index.num_perm), dtype="<u8")
    for start in range(0, len(signatures), rows_per_chunk):
        block = signatures[start:start + rows_per_chunk]
        for i, sig in enumerate(block):
            staging[i] = sig.hashvalues
        fh.write(memoryview(staging[:len(block)]).cast("B"))


# --------------------------------------------------------------------- #
# Load
# --------------------------------------------------------------------- #


def read_header(path: str | Path) -> dict:
    """The decoded JSON header of a saved index, plus ``"version"``.

    Cheap metadata inspection (``cli info`` uses it to report the
    on-disk format) — no payload bytes are touched.
    """
    with open(path, "rb") as fh:
        version, header, _ = _read_preamble(fh)
    header["version"] = version
    return header


def _read_preamble(fh) -> tuple[int, dict, int]:
    """(version, header, payload offset) — shared by both readers."""
    magic = fh.read(4)
    if magic != _MAGIC:
        raise FormatError("bad magic %r; not an LSH Ensemble file" % magic)
    raw = fh.read(_U32.size)
    if len(raw) != _U32.size:
        raise FormatError("truncated file: missing version field")
    (version,) = _U32.unpack(raw)
    if version not in (1, 2):
        raise FormatError("unsupported format version %d" % version)
    raw = fh.read(_U32.size)
    if len(raw) != _U32.size:
        raise FormatError("truncated file: missing header length")
    (header_len,) = _U32.unpack(raw)
    header_bytes = fh.read(header_len)
    if len(header_bytes) != header_len:
        raise FormatError("truncated header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError("corrupt header: %s" % exc) from exc
    return version, header, 4 + 2 * _U32.size + header_len


def _resolve_factories(header: dict, storage_factory, partitioner,
                       version: int):
    """Thread the recorded backend/partitioner through, or fail loudly.

    Explicit load-time overrides win.  Otherwise v2 headers name the
    backend in the registry (unknown names and unregistered customs
    raise — never silently fall back to the defaults); v1 headers
    predate the registry, so the constructor defaults apply.
    """
    if storage_factory is None:
        name = header.get("storage")
        if name is not None:
            try:
                storage_factory = resolve_storage_backend(name)
            except KeyError as exc:
                raise FormatError(str(exc)) from exc
        elif version >= 2:
            raise FormatError(
                "index was saved with an unregistered storage backend; "
                "pass storage_factory= to load_ensemble (or register the "
                "backend before saving)")
    if partitioner is None:
        name = header.get("partitioner")
        if name is not None:
            try:
                partitioner = resolve_partitioner(name)
            except KeyError as exc:
                raise FormatError(str(exc)) from exc
        elif version >= 2:
            raise FormatError(
                "index was saved with an unregistered partitioner; pass "
                "partitioner= to load_ensemble (or register the "
                "partitioner before saving)")
    return storage_factory, partitioner


def _make_ensemble(header: dict, storage_factory, partitioner) -> LSHEnsemble:
    kwargs = {}
    if storage_factory is not None:
        kwargs["storage_factory"] = storage_factory
    if partitioner is not None:
        kwargs["partitioner"] = partitioner
    return LSHEnsemble(
        threshold=header["threshold"],
        num_perm=header["num_perm"],
        num_partitions=header["num_partitions"],
        num_trees=header["num_trees"],
        max_depth=header["max_depth"],
        **kwargs,
    )


def load_ensemble(path: str | Path, *, storage_factory=None,
                  partitioner=None, mmap: bool = True) -> LSHEnsemble:
    """Load an index previously written by :func:`save_ensemble`.

    The returned index answers queries identically to the saved one
    (signatures are bit-exact; bucket structures re-derive
    deterministically from them with the saved partition bounds and
    high-water marks).  v2 snapshots load through one numpy view of the
    signature matrix — ``mmap=True`` (the default) maps it from disk so
    signature pages are only faulted in as queries touch them, and the
    per-depth bucket tables materialise lazily on first probe.

    Parameters
    ----------
    storage_factory, partitioner:
        Overrides for the bucket backend / partitioning strategy.  By
        default the names recorded in a v2 header are resolved through
        the registries; an unknown or unrecorded name raises
        :class:`FormatError` rather than silently reverting to the
        defaults.  v1 files carry no names, so the constructor defaults
        apply unless overridden here.
    mmap:
        Memory-map the v2 signature matrix instead of reading it into
        memory (ignored for v1 files).
    """
    with open(path, "rb") as fh:
        version, header, offset = _read_preamble(fh)
        if version == 1:
            return _load_v1(fh, header, storage_factory, partitioner)
        return _load_v2(fh, path, header, offset, storage_factory,
                        partitioner, mmap)


def _header_entry_tables(header: dict) -> tuple[list, list]:
    keys = [_decode_key(k) for k in header["keys"]]
    sizes = header["sizes"]
    if len(keys) != len(sizes):
        raise FormatError("key/size table length mismatch")
    if len(set(keys)) != len(keys):
        raise FormatError("duplicate keys in header")
    return keys, sizes


def _load_v1(fh, header: dict, storage_factory, partitioner) -> LSHEnsemble:
    storage_factory, partitioner = _resolve_factories(
        header, storage_factory, partitioner, version=1)
    keys, sizes = _header_entry_tables(header)
    entries = []
    for key, size in zip(keys, sizes):
        raw = fh.read(_U32.size)
        if len(raw) != _U32.size:
            raise FormatError("truncated payload")
        (blob_len,) = _U32.unpack(raw)
        blob = fh.read(blob_len)
        if len(blob) != blob_len:
            raise FormatError("truncated signature blob")
        entries.append((key, LeanMinHash.deserialize(blob), size))
    if fh.read(1):
        raise FormatError(
            "trailing bytes after the last signature blob; "
            "the file is corrupt (truncated-then-concatenated or "
            "doubly written)")
    index = _make_ensemble(header, storage_factory, partitioner)
    partitions = [Partition(lo, hi) for lo, hi in header["partitions"]]
    index.index(entries, partitions=partitions)
    return index


def _load_v2(fh, path, header: dict, offset: int, storage_factory,
             partitioner, mmap: bool) -> LSHEnsemble:
    storage_factory, partitioner = _resolve_factories(
        header, storage_factory, partitioner, version=2)
    keys, sizes = _header_entry_tables(header)
    partitions = [Partition(lo, hi) for lo, hi in header["partitions"]]
    try:
        partition_rows = [int(c) for c in header["partition_rows"]]
        partition_max_size = [int(m) for m in header["partition_max_size"]]
        seed_dtype = np.dtype(header.get("seed_dtype", "<u4"))
        num_perm = int(header["num_perm"])
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError("corrupt v2 header: %s" % exc) from exc
    n = len(keys)
    if sum(partition_rows) != n:
        raise FormatError(
            "partition_rows sum %d does not match %d entries"
            % (sum(partition_rows), n))
    if any(count < 0 for count in partition_rows):
        raise FormatError("negative partition_rows entry")
    if (len(partition_rows) != len(partitions)
            or len(partition_max_size) != len(partitions)):
        raise FormatError("per-partition table length mismatch")
    seeds_nbytes = n * seed_dtype.itemsize
    matrix_nbytes = n * num_perm * 8
    expected = offset + seeds_nbytes + matrix_nbytes
    actual = os.fstat(fh.fileno()).st_size
    if actual < expected:
        raise FormatError(
            "truncated payload: expected %d bytes, file has %d"
            % (expected, actual))
    if actual > expected:
        raise FormatError(
            "trailing bytes after the signature matrix (%d extra); "
            "the file is corrupt (truncated-then-concatenated or "
            "doubly written)" % (actual - expected))
    if n == 0:
        return _make_ensemble(header, storage_factory, partitioner)
    seeds_raw = fh.read(seeds_nbytes)
    if len(seeds_raw) != seeds_nbytes:
        raise FormatError("truncated seed column")
    seeds = np.frombuffer(seeds_raw, dtype=seed_dtype).astype(np.int64)
    matrix_offset = offset + seeds_nbytes
    if mmap:
        matrix = np.memmap(path, dtype="<u8", mode="r",
                           offset=matrix_offset, shape=(n, num_perm))
    else:
        payload = fh.read(matrix_nbytes)
        matrix = np.frombuffer(payload, dtype="<u8").reshape(n, num_perm)
    index = _make_ensemble(header, storage_factory, partitioner)
    index._restore_columnar(partitions, keys, sizes, matrix, seeds,
                            partition_rows, partition_max_size)
    return index
