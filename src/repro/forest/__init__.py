"""Dynamic LSH substrate: prefix-tree forests with query-time (b, r)."""

from repro.forest.prefix_forest import PrefixForest, default_forest_shape
from repro.forest.topk_forest import MinHashLSHForest

__all__ = ["PrefixForest", "MinHashLSHForest", "default_forest_shape"]
