"""Top-k similarity search on the prefix forest (LSH Forest, Bawa et al.).

:class:`~repro.forest.prefix_forest.PrefixForest` exposes the raw
``(b, r)`` knobs LSH Ensemble tunes per query.  The *original* LSH Forest
use case [4] is top-k *similarity* retrieval: descend all trees to the
deepest level, then relax the depth until enough candidates accumulate —
deeper prefix matches imply higher Jaccard similarity with high
probability.  :class:`MinHashLSHForest` packages that algorithm, which
both completes the substrate as its source paper describes it and gives
the test suite an independent oracle for forest behaviour.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.forest.prefix_forest import PrefixForest
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash

__all__ = ["MinHashLSHForest"]


class MinHashLSHForest:
    """Top-k Jaccard similarity search via depth relaxation.

    Parameters mirror :class:`PrefixForest`; ``num_trees`` plays the
    classic role of ``l`` (more trees, better recall) and ``max_depth``
    the role of ``k_max`` (deeper prefixes, better precision at the top).
    """

    def __init__(self, num_perm: int = 256, num_trees: int | None = None,
                 max_depth: int | None = None) -> None:
        self._forest = PrefixForest(num_perm=num_perm,
                                    num_trees=num_trees,
                                    max_depth=max_depth)

    @property
    def num_perm(self) -> int:
        return self._forest.num_perm

    def insert(self, key: Hashable, signature: MinHash | LeanMinHash,
               ) -> None:
        """Index ``signature`` under ``key``."""
        self._forest.insert(key, signature)

    def remove(self, key: Hashable) -> None:
        self._forest.remove(key)

    def query(self, signature: MinHash | LeanMinHash, k: int,
              ) -> list[tuple[Hashable, float]]:
        """The ``k`` keys most similar to the query, best first.

        Starts at the deepest prefix level (most selective) and relaxes
        one level at a time until at least ``k`` distinct candidates have
        been collected or depth 1 is exhausted; candidates are then
        ranked by their estimated Jaccard similarity.  May return fewer
        than ``k`` pairs when the index is small or the query is unlike
        everything indexed.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._forest.is_empty():
            return []
        candidates: set = set()
        for depth in range(self._forest.max_depth, 0, -1):
            candidates |= self._forest.query(
                signature, b=self._forest.num_trees, r=depth
            )
            if len(candidates) >= k:
                break
        lean = signature if isinstance(signature, LeanMinHash) \
            else LeanMinHash(signature)
        scored = [
            (key, lean.jaccard(self._forest.get_signature(key)))
            for key in candidates
        ]
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return scored[:k]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._forest

    def __len__(self) -> int:
        return len(self._forest)

    def __repr__(self) -> str:
        return "MinHashLSHForest(num_perm=%d, keys=%d)" % (
            self.num_perm, len(self._forest))
