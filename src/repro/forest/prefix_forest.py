"""Dynamic LSH via prefix trees (LSH Forest, Bawa et al. 2005).

Section 5.5 of the paper needs the banding parameters ``(b, r)`` to change
*per query*: the optimal trade-off between false positives and false
negatives depends on the query size ``q`` and threshold ``t*``.  A static
:class:`~repro.lsh.lsh.MinHashLSH` bakes ``(b, r)`` into its buckets, so the
paper instead stores each band as a *prefix tree* over its ``K`` hash
values:

* the effective ``r`` is chosen at query time by how deep each tree is
  traversed (any ``r <= K``), and
* the effective ``b`` by how many trees are visited (any ``b <= B``).

Following the standard hashtable realisation of LSH Forest, each tree keeps
one hash table per depth ``d`` keyed by the length-``d`` prefix of the band,
so a query at ``(b, r)`` is ``b`` exact bucket lookups — no tree walking.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.kernels import (ProbeIndex, band_dtype, get_kernel, pack_block,
                           pack_row, validate_bbit)
from repro.lsh.storage import DictHashTableStorage
from repro.minhash.batch import as_signature_matrix, prepare_bulk_insert
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash

# Batches probing fewer than this many (row, tree) pairs use the plain
# per-tree loop; the numpy prefilter's fixed call cost needs volume to
# amortise.
_MIN_VECTOR_PROBES = 256

__all__ = ["PrefixForest", "default_forest_shape"]


def default_forest_shape(num_perm: int) -> tuple[int, int]:
    """A balanced ``(B, K)`` with ``B * K == num_perm`` and ``K`` near 8.

    With the paper's ``m = 256`` this yields 32 trees of depth 8, giving the
    tuner the grid ``b <= 32, r <= 8``.
    """
    if num_perm < 2:
        raise ValueError("num_perm must be at least 2")
    for depth in (8, 7, 6, 5, 4, 3, 2, 1):
        if num_perm % depth == 0:
            return num_perm // depth, depth
    return num_perm, 1


def _as_lean(signature: MinHash | LeanMinHash) -> LeanMinHash:
    if isinstance(signature, LeanMinHash):
        return signature
    if isinstance(signature, MinHash):
        return LeanMinHash(signature)
    raise TypeError(
        "expected MinHash or LeanMinHash, got %r" % type(signature).__name__
    )


class PrefixForest:
    """A forest of ``num_trees`` prefix trees of depth ``max_depth``.

    Parameters
    ----------
    num_perm:
        Signature length ``m``; must satisfy ``num_trees * max_depth <= m``.
    num_trees:
        Upper bound ``B`` on the per-query band count ``b``.
    max_depth:
        Upper bound ``K`` on the per-query rows-per-band ``r``.
    storage_factory:
        Bucket backend, shared with :mod:`repro.lsh.storage`.
    kernel:
        Hot-loop backend (a registered name or
        :class:`~repro.kernels.Kernel` instance); defaults to the
        process selection (``REPRO_KERNEL`` env, then ``numpy``).
    bbit:
        b-bit band-key packing: None stores full uint64 lanes (the
        default), 8 or 16 keeps only each hash value's low bits in
        bucket keys — an 8x / 4x memory-bandwidth cut on the probe
        path at the cost of extra candidate collisions (recall can
        only grow; see :mod:`repro.kernels.packing`).
    """

    def __init__(self, num_perm: int = 256, num_trees: int | None = None,
                 max_depth: int | None = None,
                 storage_factory=DictHashTableStorage,
                 kernel=None, bbit=None) -> None:
        if num_perm < 2:
            raise ValueError("num_perm must be at least 2")
        if num_trees is None or max_depth is None:
            auto_trees, auto_depth = default_forest_shape(num_perm)
            num_trees = num_trees if num_trees is not None else auto_trees
            max_depth = max_depth if max_depth is not None else auto_depth
        if num_trees <= 0 or max_depth <= 0:
            raise ValueError("num_trees and max_depth must be positive")
        if num_trees * max_depth > num_perm:
            raise ValueError(
                "num_trees * max_depth = %d exceeds num_perm = %d"
                % (num_trees * max_depth, num_perm)
            )
        self.num_perm = int(num_perm)
        self.num_trees = int(num_trees)
        self.max_depth = int(max_depth)
        self._kernel = get_kernel(kernel)
        self.bbit = validate_bbit(bbit)
        # Band bucket keys are packed `_band_dtype` bytes; a depth-d
        # prefix of a band is its first d * itemsize bytes.
        self._band_dtype = band_dtype(self.bbit)
        self._item = self._band_dtype.itemsize
        # _tables[tree][depth-1] maps the length-`depth` prefix of the
        # tree's band to the set of keys stored under it.
        self._tables = [
            [storage_factory() for _ in range(self.max_depth)]
            for _ in range(self.num_trees)
        ]
        for tables in self._tables:
            for table in tables:
                # getattr: duck-typed backends predating the kernel
                # layer keep working (they just use the process default)
                adopt = getattr(table, "set_kernel", None)
                if adopt is not None:
                    adopt(self._kernel)
        self._keys: dict[Hashable, LeanMinHash] = {}
        # Bulk-inserted signature blocks whose bucket tables have not
        # been filled at every depth yet.  Each entry is
        # [keys, matrix, built_depths]: the signatures are queryable via
        # _keys immediately, while depth tables are materialised lazily
        # — a loaded snapshot pays table-fill cost only for the depths
        # its queries actually reach.
        self._pending: list[list] = []
        # Batch-probe index, per query depth r: sorted salted key hashes
        # covering every tree's depth-r table, with aligned bucket views.
        # Lazily built, dropped on any mutation.  None caches "backend
        # cannot vectorise" (e.g. keys() unsupported).
        self._probe_cache: dict[int, tuple | None] = {}
        self._tree_salts = (
            np.uint64(0x9E3779B97F4A7C15)
            * np.arange(1, self.num_trees + 1, dtype=np.uint64)
        )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, key: Hashable, signature: MinHash | LeanMinHash) -> None:
        """Index ``signature`` under ``key`` in every tree at every depth."""
        lean = _as_lean(signature)
        if lean.num_perm != self.num_perm:
            raise ValueError(
                "signature num_perm %d does not match forest num_perm %d"
                % (lean.num_perm, self.num_perm)
            )
        if key in self._keys:
            raise ValueError("key %r is already in the forest" % (key,))
        # No need to materialise pending bulk blocks: this key's bucket
        # entries are independent of theirs (set adds commute), so lazy
        # blocks keep filling on demand even on the dynamic-insert path.
        self._keys[key] = lean
        self._probe_cache.clear()
        item = self._item
        for tree in range(self.num_trees):
            start = tree * self.max_depth
            band = pack_row(lean.hashvalues, start, start + self.max_depth,
                            self._band_dtype)
            tables = self._tables[tree]
            for depth in range(1, self.max_depth + 1):
                tables[depth - 1].insert(band[:depth * item], key)

    def insert_batch(self, keys: Sequence[Hashable], batch,
                     seeds=None) -> None:
        """Index many signatures in one vectorised pass.

        Equivalent to ``for key, sig in zip(keys, batch): insert(key,
        sig)`` but with no per-entry Python work: ``batch`` is taken as
        an ``(n, num_perm)`` uint64 matrix (a
        :class:`~repro.minhash.batch.SignatureBatch`, a plain matrix, or
        a sequence of signatures), each tree's band bucket keys for the
        whole block are packed with one ``tobytes`` pass, and the bucket
        tables are filled through the storage backend's
        :meth:`~repro.lsh.storage.HashTableStorage.insert_packed` bulk
        path.

        Table fill is *lazy per depth*: the signatures are immediately
        visible (``__contains__`` / ``get_signature`` / ``remove``), but
        a depth-``r`` table is only materialised the first time a query
        reaches depth ``r`` — which is what makes re-opening a persisted
        snapshot cheap.  When the matrix is read-only (e.g. rows of a
        frozen batch or a memory-mapped snapshot) the stored signatures
        alias it instead of copying.

        ``seeds`` is the signatures' permutation seed: a scalar shared
        by the block, or one value per row.  Defaults to the batch's
        seed for a :class:`SignatureBatch` and to 1 otherwise (matching
        the MinHash default).
        """
        keys, matrix, signatures = prepare_bulk_insert(
            keys, batch, seeds, self.num_perm, self._keys, "forest")
        if not keys:
            return
        self._keys.update(zip(keys, signatures))
        self._pending.append([keys, matrix, set()])
        self._probe_cache.clear()

    def _ensure_depth(self, r: int) -> None:
        """Materialise the depth-``r`` tables of every pending block."""
        if not self._pending:
            return
        filled = False
        for block in self._pending:
            keys, matrix, built = block
            if r in built:
                continue
            stride = r * self._item
            for tree in range(self.num_trees):
                start = tree * self.max_depth
                buf = pack_block(matrix, start, start + r,
                                 self._band_dtype)
                self._tables[tree][r - 1].insert_packed(buf, stride, keys)
            built.add(r)
            filled = True
        if not filled:
            return  # depth already complete: keep the probe cache warm
        # Retire blocks whose every depth is filled: nothing left to
        # materialise, so stop re-scanning them (and drop the extra
        # key-list reference they pin).
        self._pending = [block for block in self._pending
                         if len(block[2]) < self.max_depth]
        self._probe_cache.pop(r, None)

    def materialize(self) -> None:
        """Fill every depth of every pending bulk-inserted block.

        Queries materialise depth tables on demand; call this to pay
        the whole fill cost up front (e.g. to warm a freshly loaded
        snapshot before taking traffic).  ``remove`` also forces it —
        a key deleted from incomplete tables would otherwise reappear
        when its pending block materialises.
        """
        if not self._pending:
            return
        for r in range(1, self.max_depth + 1):
            self._ensure_depth(r)
        self._pending.clear()

    def remove(self, key: Hashable) -> None:
        """Remove ``key`` from every tree and depth."""
        if key not in self._keys:
            raise KeyError(key)
        self.materialize()
        lean = self._keys.pop(key)
        self._probe_cache.clear()
        item = self._item
        for tree in range(self.num_trees):
            start = tree * self.max_depth
            band = pack_row(lean.hashvalues, start, start + self.max_depth,
                            self._band_dtype)
            tables = self._tables[tree]
            for depth in range(1, self.max_depth + 1):
                tables[depth - 1].remove(band[:depth * item], key)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, signature: MinHash | LeanMinHash, b: int, r: int) -> set:
        """Candidates at query-time parameters ``(b, r)``.

        ``b`` trees are consulted; in each, the bucket holding keys that
        agree with the query on the first ``r`` hash values of that tree's
        band is unioned into the result.
        """
        lean = _as_lean(signature)
        if lean.num_perm != self.num_perm:
            raise ValueError(
                "signature num_perm %d does not match forest num_perm %d"
                % (lean.num_perm, self.num_perm)
            )
        if not 1 <= b <= self.num_trees:
            raise ValueError(
                "b must be in [1, %d], got %d" % (self.num_trees, b)
            )
        if not 1 <= r <= self.max_depth:
            raise ValueError(
                "r must be in [1, %d], got %d" % (self.max_depth, r)
            )
        self._ensure_depth(r)
        out: set = set()
        for tree in range(b):
            start = tree * self.max_depth
            prefix = pack_row(lean.hashvalues, start, start + r,
                              self._band_dtype)
            # get_view avoids one bucket copy per probe; the union below
            # copies the members into the fresh result set.
            out |= self._tables[tree][r - 1].get_view(prefix)
        return out

    def query_batch(self, batch, b: int, r: int) -> list[set]:
        """:meth:`query` for many signatures at once.

        ``batch`` is a :class:`~repro.minhash.batch.SignatureBatch`, an
        ``(n, num_perm)`` matrix, or a sequence of signatures; the result
        list is aligned with its rows and equals
        ``[self.query(s, b, r) for s in batch]``.  Per tree, the depth-``r``
        prefixes of all rows are packed with one ``tobytes`` pass and
        probed against the tree's depth table in one fused storage call.
        """
        matrix = as_signature_matrix(batch, self.num_perm)
        if not 1 <= b <= self.num_trees:
            raise ValueError(
                "b must be in [1, %d], got %d" % (self.num_trees, b)
            )
        if not 1 <= r <= self.max_depth:
            raise ValueError(
                "r must be in [1, %d], got %d" % (self.max_depth, r)
            )
        n = matrix.shape[0]
        if n == 0:
            return []
        results: list[set] = [set() for _ in range(n)]
        self.query_batch_into(matrix, b, r, results, range(n))
        return results

    def query_batch_into(self, matrix: np.ndarray, b: int, r: int,
                         results: list, rows) -> None:
        """:meth:`query_batch` merging straight into ``results[rows[j]]``.

        The zero-allocation core of the batch path: callers that already
        hold per-query result sets (the ensemble unions over partitions)
        pass them in and no intermediate per-partition sets are built.
        ``matrix`` must be a validated C-contiguous ``(len(rows),
        num_perm)`` slice.

        Large batches go through a forest-wide prefilter: every (row,
        tree) probe is hashed in one vectorised pass and binary-searched
        against the sorted hashes of all stored depth-``r`` prefixes, so
        only probes that actually hit a bucket reach Python code; hits
        are then verified against the real tables, which keeps results
        bit-exact even across 64-bit hash collisions.
        """
        n = matrix.shape[0]
        self._ensure_depth(r)
        kernel = self._kernel
        if kernel.vectorized and n * b >= _MIN_VECTOR_PROBES:
            index = self._probe_index(r)
            if index is not None:
                if not index.hashes.size:
                    return  # no stored prefixes at this depth
                K = self.max_depth
                lanes = matrix[:, :b * K].reshape(n, b, K)[:, :, :r]
                if self.bbit is not None:
                    # Truncate to the packed lanes, widened back to
                    # uint64 so probe hashing matches the stored keys'.
                    lanes = lanes.astype(self._band_dtype).astype(
                        np.uint64)
                probes = kernel.band_hash(lanes,
                                          self._tree_salts[:b]).ravel()
                pos, hits = kernel.probe_hits(index, probes)
                if not hits.size:
                    return
                hit_rows = hits // b
                hit_trees = hits - hit_rows * b
                hit_pos = pos[hits]
                # Exact verification, still vectorised: a hash match only
                # counts when the stored entry's tree and prefix lanes
                # equal the probe's (64-bit collisions are dropped here).
                verified = (index.tree_ids[hit_pos] == hit_trees) & (
                    index.prefix_lanes[hit_pos]
                    == lanes[hit_rows, hit_trees, :]).all(axis=1)
                ver = np.nonzero(verified)[0]
                kernel.merge(results, rows, hit_rows[ver], hit_pos[ver],
                             index)
                if index.ambiguous and ver.size != hits.size:
                    # A failed lane check can also mean the probe matched
                    # the second entry of a stored-duplicate hash run
                    # (searchsorted lands on the first): re-check those
                    # probes against the real tables.
                    for i in np.nonzero(~verified)[0].tolist():
                        if int(probes[hits[i]]) not in index.ambiguous:
                            continue
                        j = int(hit_rows[i])
                        start = int(hit_trees[i]) * K
                        bucket = self._tables[int(hit_trees[i])][
                            r - 1].get_view(
                            pack_row(matrix[j], start, start + r,
                                     self._band_dtype))
                        if bucket:
                            results[rows[j]] |= bucket
                return
        stride = r * self._item
        for tree in range(b):
            start = tree * self.max_depth
            buf = pack_block(matrix, start, start + r, self._band_dtype)
            self._tables[tree][r - 1].merge_packed(buf, stride, results,
                                                   rows)

    def _probe_index(self, r: int) -> ProbeIndex | None:
        """The depth-``r`` :class:`~repro.kernels.ProbeIndex`, or None.

        Holds the salted hash of every stored depth-``r`` prefix across
        all trees, sorted, with per-key verification lanes and the live
        bucket views aligned to the sort order (views stay current
        because member mutation happens in place — any bucket-key
        change clears the whole cache).  ``ambiguous`` is the set of
        hash values shared by more than one (tree, prefix) — normally
        empty; probes whose lane check fails there are re-verified
        against the real tables, so results stay bit-exact despite
        64-bit collisions.  None caches "this backend cannot vectorise"
        (``keys()`` unsupported); the caller then falls back to
        per-tree loops.
        """
        if r in self._probe_cache:
            return self._probe_cache[r]
        kernel = self._kernel
        parts: list[np.ndarray] = []
        lane_parts: list[np.ndarray] = []
        tree_parts: list[np.ndarray] = []
        views: list = []
        try:
            for tree in range(self.num_trees):
                table = self._tables[tree][r - 1]
                keys = list(table.keys())
                if not keys:
                    continue
                lanes = np.frombuffer(b"".join(keys),
                                      dtype=self._band_dtype).reshape(
                                          len(keys), r)
                if self.bbit is not None:
                    lanes = lanes.astype(np.uint64)
                parts.append(kernel.band_hash(lanes,
                                              self._tree_salts[tree]))
                lane_parts.append(lanes)
                tree_parts.append(np.full(len(keys), tree, dtype=np.intp))
                views.extend(table.get_view(k) for k in keys)
        except NotImplementedError:
            self._probe_cache[r] = None
            return None
        if not parts:
            index = ProbeIndex(np.empty(0, dtype=np.uint64),
                               np.empty(0, dtype=np.intp),
                               np.empty((0, r), dtype=np.uint64), [],
                               frozenset())
            self._probe_cache[r] = index
            return index
        hashes = np.concatenate(parts)
        order = np.argsort(hashes, kind="stable")
        sorted_hashes = hashes[order]
        buckets = [views[i] for i in order.tolist()]
        dup = sorted_hashes[1:] == sorted_hashes[:-1]
        ambiguous = frozenset(sorted_hashes[:-1][dup].tolist())
        index = ProbeIndex(sorted_hashes,
                           np.concatenate(tree_parts)[order],
                           np.concatenate(lane_parts)[order], buckets,
                           ambiguous)
        self._probe_cache[r] = index
        return index

    def get_signature(self, key: Hashable) -> LeanMinHash:
        """The stored signature for ``key`` (KeyError when absent)."""
        return self._keys[key]

    @property
    def kernel(self):
        """The resolved hot-loop kernel backend."""
        return self._kernel

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __contains__(self, key: Hashable) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def is_empty(self) -> bool:
        return not self._keys

    def __repr__(self) -> str:
        return ("PrefixForest(num_perm=%d, num_trees=%d, max_depth=%d, "
                "keys=%d)" % (self.num_perm, self.num_trees, self.max_depth,
                              len(self._keys)))
