"""Dynamic LSH via prefix trees (LSH Forest, Bawa et al. 2005).

Section 5.5 of the paper needs the banding parameters ``(b, r)`` to change
*per query*: the optimal trade-off between false positives and false
negatives depends on the query size ``q`` and threshold ``t*``.  A static
:class:`~repro.lsh.lsh.MinHashLSH` bakes ``(b, r)`` into its buckets, so the
paper instead stores each band as a *prefix tree* over its ``K`` hash
values:

* the effective ``r`` is chosen at query time by how deep each tree is
  traversed (any ``r <= K``), and
* the effective ``b`` by how many trees are visited (any ``b <= B``).

Following the standard hashtable realisation of LSH Forest, each tree keeps
one hash table per depth ``d`` keyed by the length-``d`` prefix of the band,
so a query at ``(b, r)`` is ``b`` exact bucket lookups — no tree walking.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.lsh.storage import DictHashTableStorage
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash

__all__ = ["PrefixForest", "default_forest_shape"]


def default_forest_shape(num_perm: int) -> tuple[int, int]:
    """A balanced ``(B, K)`` with ``B * K == num_perm`` and ``K`` near 8.

    With the paper's ``m = 256`` this yields 32 trees of depth 8, giving the
    tuner the grid ``b <= 32, r <= 8``.
    """
    if num_perm < 2:
        raise ValueError("num_perm must be at least 2")
    for depth in (8, 7, 6, 5, 4, 3, 2, 1):
        if num_perm % depth == 0:
            return num_perm // depth, depth
    return num_perm, 1


def _as_lean(signature: MinHash | LeanMinHash) -> LeanMinHash:
    if isinstance(signature, LeanMinHash):
        return signature
    if isinstance(signature, MinHash):
        return LeanMinHash(signature)
    raise TypeError(
        "expected MinHash or LeanMinHash, got %r" % type(signature).__name__
    )


class PrefixForest:
    """A forest of ``num_trees`` prefix trees of depth ``max_depth``.

    Parameters
    ----------
    num_perm:
        Signature length ``m``; must satisfy ``num_trees * max_depth <= m``.
    num_trees:
        Upper bound ``B`` on the per-query band count ``b``.
    max_depth:
        Upper bound ``K`` on the per-query rows-per-band ``r``.
    storage_factory:
        Bucket backend, shared with :mod:`repro.lsh.storage`.
    """

    def __init__(self, num_perm: int = 256, num_trees: int | None = None,
                 max_depth: int | None = None,
                 storage_factory=DictHashTableStorage) -> None:
        if num_perm < 2:
            raise ValueError("num_perm must be at least 2")
        if num_trees is None or max_depth is None:
            auto_trees, auto_depth = default_forest_shape(num_perm)
            num_trees = num_trees if num_trees is not None else auto_trees
            max_depth = max_depth if max_depth is not None else auto_depth
        if num_trees <= 0 or max_depth <= 0:
            raise ValueError("num_trees and max_depth must be positive")
        if num_trees * max_depth > num_perm:
            raise ValueError(
                "num_trees * max_depth = %d exceeds num_perm = %d"
                % (num_trees * max_depth, num_perm)
            )
        self.num_perm = int(num_perm)
        self.num_trees = int(num_trees)
        self.max_depth = int(max_depth)
        # _tables[tree][depth-1] maps the length-`depth` prefix of the
        # tree's band to the set of keys stored under it.
        self._tables = [
            [storage_factory() for _ in range(self.max_depth)]
            for _ in range(self.num_trees)
        ]
        self._keys: dict[Hashable, LeanMinHash] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, key: Hashable, signature: MinHash | LeanMinHash) -> None:
        """Index ``signature`` under ``key`` in every tree at every depth."""
        lean = _as_lean(signature)
        if lean.num_perm != self.num_perm:
            raise ValueError(
                "signature num_perm %d does not match forest num_perm %d"
                % (lean.num_perm, self.num_perm)
            )
        if key in self._keys:
            raise ValueError("key %r is already in the forest" % (key,))
        self._keys[key] = lean
        for tree in range(self.num_trees):
            start = tree * self.max_depth
            band = lean.band(start, start + self.max_depth)
            tables = self._tables[tree]
            for depth in range(1, self.max_depth + 1):
                tables[depth - 1].insert(band[:depth], key)

    def remove(self, key: Hashable) -> None:
        """Remove ``key`` from every tree and depth."""
        lean = self._keys.pop(key, None)
        if lean is None:
            raise KeyError(key)
        for tree in range(self.num_trees):
            start = tree * self.max_depth
            band = lean.band(start, start + self.max_depth)
            tables = self._tables[tree]
            for depth in range(1, self.max_depth + 1):
                tables[depth - 1].remove(band[:depth], key)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, signature: MinHash | LeanMinHash, b: int, r: int) -> set:
        """Candidates at query-time parameters ``(b, r)``.

        ``b`` trees are consulted; in each, the bucket holding keys that
        agree with the query on the first ``r`` hash values of that tree's
        band is unioned into the result.
        """
        lean = _as_lean(signature)
        if lean.num_perm != self.num_perm:
            raise ValueError(
                "signature num_perm %d does not match forest num_perm %d"
                % (lean.num_perm, self.num_perm)
            )
        if not 1 <= b <= self.num_trees:
            raise ValueError(
                "b must be in [1, %d], got %d" % (self.num_trees, b)
            )
        if not 1 <= r <= self.max_depth:
            raise ValueError(
                "r must be in [1, %d], got %d" % (self.max_depth, r)
            )
        out: set = set()
        for tree in range(b):
            start = tree * self.max_depth
            prefix = lean.band(start, start + r)
            # get_view avoids one bucket copy per probe; the union below
            # copies the members into the fresh result set.
            out |= self._tables[tree][r - 1].get_view(prefix)
        return out

    def get_signature(self, key: Hashable) -> LeanMinHash:
        """The stored signature for ``key`` (KeyError when absent)."""
        return self._keys[key]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __contains__(self, key: Hashable) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def is_empty(self) -> bool:
        return not self._keys

    def __repr__(self) -> str:
        return ("PrefixForest(num_perm=%d, num_trees=%d, max_depth=%d, "
                "keys=%d)" % (self.num_perm, self.num_trees, self.max_depth,
                              len(self._keys)))
