"""b-bit band-key packing (Li & König's b-bit minwise hashing).

Signatures stay full 64-bit in memory and on disk — the containment
estimator and the persistence format are untouched.  What b-bit packing
changes is the *bucket keys*: instead of storing each depth-``r`` band
prefix as ``r`` uint64 lanes (8 bytes each), only the low ``b`` bits of
each hash value are kept, so a key shrinks 8x (``bbit=8``) or 4x
(``bbit=16``).  At 10M-domain scale the bucket-key bytes dominate the
probe path's memory traffic, so this is a direct bandwidth cut.

The trade-off is more hash collisions per bucket key: packed buckets can
only *gain* members relative to unpacked ones, so recall never drops
(the recall-parity harness in ``tests/kernels/`` pins this against the
Figure 4–7 eval metrics) while precision may dip slightly.  ``bbit`` is
recorded in the v2 snapshot header; absent means unpacked, which keeps
every pre-existing snapshot loadable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BBIT_CHOICES", "band_dtype", "validate_bbit", "pack_row",
           "pack_block", "lanes_from_bytes"]

#: Supported packings: None keeps full uint64 lanes.
BBIT_CHOICES = (None, 8, 16)

_DTYPES = {None: np.dtype(np.uint64), 8: np.dtype(np.uint8),
           16: np.dtype(np.uint16)}


def validate_bbit(bbit) -> int | None:
    """Normalise/validate a ``bbit`` setting (None, 8 or 16)."""
    if bbit is None:
        return None
    bbit = int(bbit)
    if bbit not in _DTYPES:
        raise ValueError(
            "bbit must be one of %s, got %r"
            % (sorted(b for b in BBIT_CHOICES if b), bbit))
    return bbit


def band_dtype(bbit) -> np.dtype:
    """The band-key lane dtype for a ``bbit`` setting."""
    return _DTYPES[validate_bbit(bbit)]


def pack_row(hashvalues: np.ndarray, start: int, stop: int,
             dtype: np.dtype) -> bytes:
    """One signature's packed band key for columns ``[start, stop)``.

    With ``dtype`` uint64 this equals ``LeanMinHash.band``; narrower
    dtypes truncate each hash to its low bits (C-cast semantics).
    """
    band = hashvalues[start:stop]
    if dtype.itemsize != 8:
        band = band.astype(dtype)
    return np.ascontiguousarray(band).tobytes()


def pack_block(matrix: np.ndarray, start: int, stop: int,
               dtype: np.dtype) -> bytes:
    """Packed band keys for every row of a signature matrix, as one
    concatenated buffer of ``(stop - start) * dtype.itemsize``-byte
    keys (the layout ``insert_packed`` / ``merge_packed`` consume)."""
    block = matrix[:, start:stop]
    if dtype.itemsize != 8:
        block = block.astype(dtype)
    return np.ascontiguousarray(block).tobytes()


def lanes_from_bytes(buf: bytes | memoryview, n: int,
                     stride: int) -> np.ndarray:
    """The uint64 hash lanes of ``n`` packed ``stride``-byte keys.

    8-byte-aligned keys are viewed directly; b-bit packed keys (stride
    not a multiple of 8) are widened byte-wise so the same FNV kernel
    covers both layouts — probe and stored-key hashing must agree, and
    both route through here.
    """
    if stride % 8 == 0:
        return np.frombuffer(buf, dtype=np.uint64).reshape(n, stride // 8)
    return np.frombuffer(buf, dtype=np.uint8).reshape(
        n, stride).astype(np.uint64)
