"""The ``numpy`` kernel backend — the default production path.

One FNV-1a pass per band over the whole signature matrix, an
open-addressing hash table for query-path probing (binary search stays
as the reference :meth:`probe` op), and a columnar unique-based merge
that gathers candidate IDs into preallocated buffers instead of
unioning one frozenset per bucket.  Bit-identical to the ``python``
reference (the property suite pins it); faster because every per-probe
decision happens inside numpy.

Why a hash table: at 1M+ domains the sorted hash arrays are tens of MB,
so each binary search is ~``log2(n)`` *dependent* DRAM misses — slower
than the dict lookups of the pure-python path, which pay ~2.  The
table (linear probing, load factor <= 0.25, hash and position packed
into one 16-byte row so a probe's verify never leaves its cache line)
gets that down to ~1 gather per probe, and both build and lookup are
whole-batch numpy passes.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.kernels.base import Kernel, ProbeIndex, SortedHashes

__all__ = ["NumpyKernel", "fnv1a_lanes"]

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)

# Below this many verified hits the per-bucket set-union loop beats the
# columnar gather (whose fixed cost is a handful of array ops plus the
# lazy column build on first use).
_MIN_COLUMNAR_HITS = 1024

# Fibonacci multiplicative hashing spreads the (already FNV-mixed)
# 64-bit keys over the table's power-of-two slots.
_SLOT_MULT = np.uint64(0x9E3779B97F4A7C15)

# Below this many stored hashes a binary search stays cache-resident
# and beats the table's build cost + fixed lookup overhead.
_MIN_TABLE_KEYS = 8192

# Once this few probes remain unresolved, finish them with a scalar
# walk: each extra vectorised round costs ~10 whole-array ops, and the
# stragglers (probes stuck in long collision clusters) would otherwise
# force one round per remaining cluster slot.
_SCALAR_TAIL = 48


def _build_probe_table(sorted_hashes: np.ndarray):
    """Open-addressing table over the *distinct* values of a sorted
    uint64 array: ``(table, shift, mask)``.

    ``table`` is ``(size, 2)`` uint64 — column 0 the stored hash,
    column 1 the leftmost position in ``sorted_hashes`` plus one (0
    marks an empty slot), packed side by side so a lookup's compare and
    its position read share one 16-byte row.  Insertion is whole-batch:
    every round writes one pending key into each contested free slot
    (``np.unique`` picks the winner, so no duplicate fancy writes) and
    advances the rest one slot; at least one key lands per round, so
    the loop terminates in O(max cluster) rounds.
    """
    n = sorted_hashes.size
    first = np.empty(n, dtype=bool)
    first[0] = True
    np.not_equal(sorted_hashes[1:], sorted_hashes[:-1], out=first[1:])
    positions = np.flatnonzero(first)
    keys = sorted_hashes[positions]
    size = 1 << max(4, int(4 * keys.size - 1).bit_length())
    shift = np.uint64(64 - size.bit_length() + 1)
    mask = np.int64(size - 1)
    table = np.zeros((size, 2), dtype=np.uint64)
    stored = positions.astype(np.uint64) + np.uint64(1)
    idx = ((keys * _SLOT_MULT) >> shift).astype(np.int64)
    pending = np.arange(keys.size)
    while pending.size:
        slots = idx[pending]
        free = table[slots, 1] == 0
        writers = pending[free]
        wslots = slots[free]
        uniq_slots, sel = np.unique(wslots, return_index=True)
        winners = writers[sel]
        table[uniq_slots, 0] = keys[winners]
        table[uniq_slots, 1] = stored[winners]
        lost = np.ones(writers.size, dtype=bool)
        lost[sel] = False
        pending = np.concatenate((pending[~free], writers[lost]))
        idx[pending] = (idx[pending] + 1) & mask
    return table, shift, mask


def fnv1a_lanes(lanes: np.ndarray,
                salt: np.ndarray | np.uint64 | None = None) -> np.ndarray:
    """Vectorised FNV-1a over the uint64 lanes of packed bucket keys.

    ``lanes`` holds one key per row (last axis = the key's 8-byte lanes);
    returns one uint64 hash per row.  Used as a *prefilter*: batch probes
    are resolved against a sorted array of stored-key hashes, and only
    rows whose hash matches are verified against the real table — a
    64-bit collision can therefore cost a wasted lookup, never a wrong
    result.  ``salt`` distinguishes key spaces sharing one index (e.g.
    one hash array for all trees of a forest).
    """
    h = np.bitwise_xor(_FNV_OFFSET if salt is None else _FNV_OFFSET ^ salt,
                       lanes[..., 0])
    h = h * _FNV_PRIME
    for c in range(1, lanes.shape[-1]):
        h = (h ^ lanes[..., c]) * _FNV_PRIME
    return h


class NumpyKernel(Kernel):
    """Batch-vectorised band-hash / probe / merge."""

    name = "numpy"
    vectorized = True

    def __init__(self) -> None:
        # Grow-only per-thread gather scratch: the merge reuses one
        # buffer across calls instead of allocating per batch (the
        # instance is shared process-wide via the registry, so the
        # scratch must be thread-local).
        self._local = threading.local()

    def band_hash(self, lanes, salt=None):
        return fnv1a_lanes(lanes, salt)

    def probe(self, sorted_hashes, probes):
        pos = np.searchsorted(sorted_hashes, probes)
        np.minimum(pos, sorted_hashes.size - 1, out=pos)
        hits = np.nonzero(sorted_hashes[pos] == probes)[0]
        return pos, hits

    def probe_hits(self, index: SortedHashes, probes):
        if index.hashes.size < _MIN_TABLE_KEYS:
            return self.probe(index.hashes, probes)
        table, shift, mask = index.aux(_build_probe_table)
        m = probes.size
        pos = np.zeros(m, dtype=np.intp)
        hit = np.zeros(m, dtype=bool)
        idx = ((probes * _SLOT_MULT) >> shift).astype(np.int64)
        active = np.arange(m)
        pv = probes
        while active.size > _SCALAR_TAIL:
            rows = table[idx]
            occupied = rows[:, 1] != 0
            match = occupied & (rows[:, 0] == pv)
            if match.any():
                where = active[match]
                hit[where] = True
                pos[where] = rows[match, 1].astype(np.intp) - 1
            # Occupied by a different hash: advance one slot.  An empty
            # slot proves absence (nothing is ever deleted from the
            # table — mutation discards the whole holder).
            cont = occupied ^ match  # match is a subset of occupied
            active = active[cont]
            pv = pv[cont]
            idx = (idx[cont] + 1) & mask
        if active.size:
            # Collision-cluster stragglers (or a tiny batch): walk the
            # remaining chains one slot at a time instead of paying a
            # whole-array round per extra slot.
            int_mask = int(mask)
            for k in range(active.size):
                i = int(idx[k])
                p = int(pv[k])
                while True:
                    stored = int(table[i, 1])
                    if stored == 0:
                        break
                    if int(table[i, 0]) == p:
                        j = int(active[k])
                        hit[j] = True
                        pos[j] = stored - 1
                        break
                    i = (i + 1) & int_mask
        return pos, np.flatnonzero(hit)

    def _scratch(self, n: int) -> np.ndarray:
        buf = getattr(self._local, "buf", None)
        if buf is None or buf.size < n:
            buf = np.empty(max(n, 4096), dtype=np.int64)
            self._local.buf = buf
        return buf[:n]

    def merge(self, results, rows, hit_rows, hit_pos, index: ProbeIndex):
        if hit_pos.size >= _MIN_COLUMNAR_HITS:
            self._merge_columnar(results, rows, hit_rows, hit_pos, index)
            return
        buckets = index.buckets
        for j, p in zip(hit_rows.tolist(), hit_pos.tolist()):
            bucket = buckets[p]
            if bucket:
                results[rows[j]] |= bucket

    def _merge_columnar(self, results, rows, hit_rows, hit_pos,
                        index: ProbeIndex) -> None:
        """Gather every hit bucket's member IDs into one flat buffer,
        split it per query row (``hit_rows`` is non-decreasing), and
        dedup with ``np.unique`` before touching the Python sets — the
        per-member Python cost drops from one set-op per bucket member
        to one per *unique* candidate."""
        member_ids, offsets, id_to_key = index.columns()
        starts = offsets[hit_pos]
        counts = offsets[hit_pos + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return
        reps = np.repeat(np.arange(hit_pos.size, dtype=np.int64), counts)
        cum = np.cumsum(counts) - counts  # gather-space start of each hit
        gather = self._scratch(total)
        gather[:] = np.arange(total, dtype=np.int64)
        gather -= cum[reps]
        gather += starts[reps]
        ids = member_ids[gather]
        row_of = hit_rows[reps]  # non-decreasing, see Kernel.merge
        # One global dedup: (row, id) packs into a single int64 (both
        # factors are list lengths, so the product stays well inside the
        # type), and one np.unique replaces a per-row-segment unique
        # loop whose fixed costs dominated at large batch sizes.
        width = np.int64(len(id_to_key))
        pairs = np.unique(row_of * width + ids)
        urows = pairs // width
        uids = pairs - urows * width
        splits = np.nonzero(np.diff(urows))[0] + 1
        seg_rows = urows[np.concatenate(([0], splits))]
        keys = id_to_key[uids]  # one object gather for every segment
        for j, seg in zip(seg_rows.tolist(), np.split(keys, splits)):
            results[rows[j]].update(seg.tolist())
