"""Pluggable hot-path kernels: band hashing, probing, candidate merge.

Every LSH query in this repo bottoms out in three loops (see
:mod:`repro.kernels.base`); this package routes them through selectable
backends registered by name, mirroring the storage-backend and
partitioner registries:

========  ===========================================================
name      implementation
========  ===========================================================
python    pure-Python reference loops (always available, bit-exact
          ground truth for the property suite)
numpy     batch-vectorised FNV hashing, open-addressing hash-table
          probe, columnar merge — the default
numba     ``@njit(cache=True)`` compiled hash + probe; registered only
          when numba imports, never a hard dependency
========  ===========================================================

Selection precedence (first match wins):

1. an explicit ``kernel=`` argument (a name or a :class:`Kernel`
   instance) on ``MinHashLSH`` / ``PrefixForest`` / ``LSHEnsemble`` /
   ``ShardedEnsemble.load`` / ``load_ensemble`` / the CLI ``--kernel``;
2. the ``REPRO_KERNEL`` environment variable;
3. the kernel name recorded in a snapshot header being loaded (this is
   how :class:`~repro.parallel.procpool.ProcPool` workers adopt the
   parent's choice — the name travels in the v2 header);
4. the ``numpy`` default.

All backends are bit-identical by contract, so the precedence order can
affect speed only, never results.
"""

from __future__ import annotations

import os

from repro.kernels.base import Kernel, ProbeIndex, SortedHashes
from repro.kernels.numpy_impl import NumpyKernel, fnv1a_lanes
from repro.kernels.packing import (BBIT_CHOICES, band_dtype, lanes_from_bytes,
                                   pack_block, pack_row, validate_bbit)
from repro.kernels.python_impl import PythonKernel

__all__ = ["Kernel", "ProbeIndex", "SortedHashes", "fnv1a_lanes",
           "register_kernel",
           "resolve_kernel", "kernel_name", "list_kernels", "get_kernel",
           "kernel_for_header", "KERNEL_ENV", "DEFAULT_KERNEL",
           "BBIT_CHOICES", "band_dtype", "validate_bbit", "pack_row",
           "pack_block", "lanes_from_bytes"]

#: Environment override consulted when no explicit kernel is given.
KERNEL_ENV = "REPRO_KERNEL"

DEFAULT_KERNEL = "numpy"

_KERNELS: dict[str, type] = {}
_INSTANCES: dict[str, Kernel] = {}


def register_kernel(name: str, factory) -> None:
    """Register ``factory`` (zero-argument, returning a :class:`Kernel`)
    under ``name``.

    Re-registering a name with a different factory raises — snapshot
    headers reference kernels by name, so names must stay unambiguous
    within a process (same contract as the storage-backend registry).
    """
    existing = _KERNELS.get(name)
    if existing is not None and existing is not factory:
        raise ValueError("kernel name %r is already registered" % name)
    _KERNELS[name] = factory


def resolve_kernel(name: str) -> Kernel:
    """The (shared) kernel instance registered under ``name``.

    Instances are per-name singletons: kernels hold no index state (the
    only mutable member is thread-local scratch), so one instance safely
    serves every index in the process.
    """
    kernel = _INSTANCES.get(name)
    if kernel is None:
        try:
            factory = _KERNELS[name]
        except KeyError:
            raise KeyError(
                "unknown kernel %r; registered kernels: %s"
                % (name, sorted(_KERNELS))) from None
        kernel = _INSTANCES[name] = factory()
    return kernel


def kernel_name(kernel) -> str | None:
    """The registered name of ``kernel``, or None when unregistered."""
    name = getattr(kernel, "name", None)
    return name if name in _KERNELS else None


def list_kernels() -> list[str]:
    """Names of all registered kernel backends, sorted."""
    return sorted(_KERNELS)


def get_kernel(spec: "str | Kernel | None" = None) -> Kernel:
    """Resolve ``spec`` through the selection precedence.

    ``spec`` may be a registered name, a :class:`Kernel` instance
    (passed through), or None — in which case ``REPRO_KERNEL`` is
    consulted and then the ``numpy`` default.  Unknown names raise
    (explicit choices must not silently degrade).
    """
    if spec is None:
        spec = os.environ.get(KERNEL_ENV) or DEFAULT_KERNEL
    if isinstance(spec, str):
        return resolve_kernel(spec)
    if isinstance(spec, Kernel):
        return spec
    raise TypeError("kernel must be a name or Kernel instance, got %r"
                    % type(spec).__name__)


def kernel_for_header(name: str | None,
                      override: "str | Kernel | None" = None) -> Kernel:
    """The kernel a *loaded* index should run with.

    ``override`` (the ``kernel=`` load argument) wins, then the
    ``REPRO_KERNEL`` environment, then the header-recorded ``name``
    (how pool workers adopt the parent's choice), then the default.
    Unlike :func:`get_kernel`, an unknown or unregistered header name
    falls back to the default instead of raising: backends are
    bit-identical, so a snapshot built with an unavailable kernel (e.g.
    numba on a box without it) must still load and answer correctly.
    """
    if override is not None:
        return get_kernel(override)
    if os.environ.get(KERNEL_ENV):
        return get_kernel(None)
    if name:
        try:
            return resolve_kernel(name)
        except KeyError:
            pass
    return get_kernel(None)


register_kernel("python", PythonKernel)
register_kernel("numpy", NumpyKernel)

try:  # numba is optional; the backend self-registers only if importable
    from repro.kernels.numba_impl import NumbaKernel
except ImportError:
    NumbaKernel = None
else:
    register_kernel("numba", NumbaKernel)
