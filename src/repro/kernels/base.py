"""Kernel interface: the three hot loops behind every LSH query path.

Profiling the batch query path at 1M+ domains (the ROADMAP's 10M-scale
target; the paper itself stops at 575k in Table 4) shows the time going
to three loops, and only three:

* **band hashing** — FNV-1a over the packed uint64 lanes of every
  (row, tree) band prefix of a signature matrix;
* **probing** — binary search of the hashed probes against the sorted
  hashes of all stored bucket keys;
* **merging** — the union of every verified hit's bucket members into
  the per-query candidate sets.

A :class:`Kernel` bundles one implementation of each.  The ``python``
backend keeps the plain dict/loop code as the bit-exact reference; the
``numpy`` backend is the vectorised production path; ``numba`` (when
importable) compiles the hash and probe loops.  Backends are registered
by name (see :mod:`repro.kernels`) exactly like storage backends and
partitioners, and the chosen name is recorded in snapshot headers so
process-pool workers and loaded indexes adopt the builder's choice.

Every backend must be *bit-identical* to ``python`` — the property suite
(`tests/kernels/`) enforces it — so selection is purely a performance
decision and can never change a query answer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Kernel", "ProbeIndex", "SortedHashes"]


class Kernel:
    """One backend for the band-hash / probe / merge hot loops.

    ``vectorized`` gates dispatch in the forest and storage layers: a
    non-vectorised kernel (the ``python`` reference) makes callers take
    their plain per-probe loops, which *is* the reference implementation
    — its op methods below exist so the property suite can also pin the
    vectorised backends' ops one at a time.
    """

    name: str = "?"
    #: Whether callers should take their batch-vectorised paths.
    vectorized: bool = True

    def band_hash(self, lanes: np.ndarray,
                  salt: np.ndarray | np.uint64 | None = None) -> np.ndarray:
        """FNV-1a over the last axis of ``lanes`` (uint64), one hash per
        leading-shape element.  ``salt`` broadcasts against the output
        shape and distinguishes key spaces sharing one index (e.g. the
        trees of a forest)."""
        raise NotImplementedError

    def probe(self, sorted_hashes: np.ndarray,
              probes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Binary-search ``probes`` in ``sorted_hashes`` (both uint64).

        Returns ``(pos, hits)``: ``pos[i]`` is the clamped insertion
        point of ``probes[i]`` and ``hits`` the probe indices whose
        hash actually matched (``sorted_hashes[pos[i]] == probes[i]``).
        ``sorted_hashes`` must be non-empty.
        """
        raise NotImplementedError

    def probe_hits(self, index: "SortedHashes",
                   probes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`probe` when only the *hits* matter — the query path.

        Same return shape as :meth:`probe`, with a weaker contract that
        unlocks faster structures: ``hits`` must be identical, and
        ``pos[i]`` must equal :meth:`probe`'s for every ``i`` in
        ``hits`` (the leftmost match), but ``pos`` entries of missed
        probes are unspecified.  ``index`` is a :class:`SortedHashes`
        (or subclass), so backends can lazily attach an acceleration
        structure to it via :meth:`SortedHashes.aux` — the numpy
        backend hangs an open-addressing hash table there, turning the
        ~``log2(n)`` dependent cache misses of a binary search into
        ~1 gather per probe at large ``n``.
        """
        return self.probe(index.hashes, probes)

    def merge(self, results: list, rows, hit_rows: np.ndarray,
              hit_pos: np.ndarray, index: "ProbeIndex") -> None:
        """Union the bucket of every verified hit into the caller's sets.

        Hit ``i`` unions ``index.buckets[hit_pos[i]]`` into
        ``results[rows[hit_rows[i]]]``.  ``hit_rows`` is non-decreasing
        (probe hits come out of a row-major scan) — vectorised backends
        rely on that to group hits per row without a sort.
        """
        raise NotImplementedError


class SortedHashes:
    """A sorted uint64 hash array plus a backend-owned lookup structure.

    The minimal probe-side index: :meth:`Kernel.probe_hits` takes one of
    these (the storage layer's packed-key prefilter uses it directly;
    the forest's richer :class:`ProbeIndex` subclasses it).  ``aux``
    lazily attaches whatever acceleration structure the active backend
    wants (the numpy kernel's hash table) — cached here because the
    holder's lifetime IS the structure's validity: any mutation of the
    underlying buckets discards the whole holder, never the array in
    place.
    """

    __slots__ = ("hashes", "_aux")

    def __init__(self, hashes: np.ndarray) -> None:
        self.hashes = hashes
        self._aux = None

    def aux(self, build):
        """The cached acceleration structure, built on first use.

        ``build(hashes)`` runs at most once per holder; backends must
        therefore derive the structure purely from ``hashes`` (two
        backends sharing one holder is not supported — a holder belongs
        to the index that owns it, which resolved exactly one kernel).
        """
        structure = self._aux
        if structure is None:
            structure = self._aux = build(self.hashes)
        return structure


class ProbeIndex(SortedHashes):
    """The forest's per-depth probe-side view of all stored bucket keys.

    Built once per (depth, mutation generation) by
    :meth:`~repro.forest.prefix_forest.PrefixForest._probe_index` and
    handed to the kernel ops: ``hashes`` are the sorted salted key
    hashes, ``tree_ids`` / ``prefix_lanes`` the per-key verification
    lanes and ``buckets`` the live bucket views, all aligned with the
    sort order.  ``ambiguous`` holds hash values shared by more than one
    stored key (64-bit collisions) — probes failing lane verification
    there are re-checked against the real tables by the caller.

    :meth:`columns` lazily flattens the buckets into one columnar
    ``(member_ids, offsets, id_to_key)`` triple so a vectorised merge
    can gather candidate IDs with array ops instead of per-bucket set
    unions; the flatten cost is paid once per index build and only when
    a merge actually wants it.
    """

    __slots__ = ("tree_ids", "prefix_lanes", "buckets",
                 "ambiguous", "_columns")

    def __init__(self, hashes: np.ndarray, tree_ids: np.ndarray,
                 prefix_lanes: np.ndarray, buckets: list,
                 ambiguous: frozenset) -> None:
        super().__init__(hashes)
        self.tree_ids = tree_ids
        self.prefix_lanes = prefix_lanes
        self.buckets = buckets
        self.ambiguous = ambiguous
        self._columns: tuple | None = None

    def columns(self) -> tuple:
        """``(member_ids, offsets, id_to_key)`` over all buckets.

        ``member_ids[offsets[p]:offsets[p + 1]]`` are integer IDs of the
        members of ``buckets[p]``; ``id_to_key`` maps ID back to the
        stored key.  Safe to cache alongside the index: any bucket
        mutation invalidates the whole probe index (the forest clears
        its cache), never the buckets in place underneath a live one.
        """
        cols = self._columns
        if cols is None:
            id_of: dict = {}
            id_to_key: list = []
            ids: list[int] = []
            offsets = np.empty(len(self.buckets) + 1, dtype=np.int64)
            offsets[0] = 0
            for p, bucket in enumerate(self.buckets):
                for key in bucket:
                    i = id_of.get(key)
                    if i is None:
                        i = len(id_to_key)
                        id_of[key] = i
                        id_to_key.append(key)
                    ids.append(i)
                offsets[p + 1] = len(ids)
            member_ids = np.asarray(ids, dtype=np.int64)
            # Object array, not list: lets the merge gather whole key
            # segments with one fancy index instead of a Python loop.
            keys_arr = np.empty(len(id_to_key), dtype=object)
            keys_arr[:] = id_to_key
            cols = self._columns = (member_ids, offsets, keys_arr)
        return cols
