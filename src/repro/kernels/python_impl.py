"""The ``python`` kernel backend — the bit-exact reference.

``vectorized`` is False, so the forest and storage layers answer every
query through their plain per-probe dict loops — the code the project
started with, and the semantics every other backend is property-tested
against.  The op methods below are *also* implemented in pure Python
(integer FNV, ``bisect`` probing, per-bucket set unions) so the suite
can pin each vectorised op against its scalar twin in isolation, not
just end-to-end query results.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.kernels.base import Kernel, ProbeIndex

__all__ = ["PythonKernel"]

_OFFSET = 0xCBF29CE484222325
_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


class PythonKernel(Kernel):
    """Scalar reference ops; dispatches callers to their plain loops."""

    name = "python"
    vectorized = False

    def band_hash(self, lanes, salt=None):
        lanes = np.asarray(lanes, dtype=np.uint64)
        shape = lanes.shape[:-1]
        if salt is None:
            salts = np.zeros(shape, dtype=np.uint64)
        else:
            salts = np.broadcast_to(np.asarray(salt, dtype=np.uint64),
                                    shape)
        out = np.empty(shape, dtype=np.uint64)
        flat_lanes = lanes.reshape(-1, lanes.shape[-1])
        flat_salts = salts.reshape(-1)
        flat_out = out.reshape(-1)
        for i in range(flat_lanes.shape[0]):
            h = _OFFSET ^ int(flat_salts[i])
            for lane in flat_lanes[i].tolist():
                h = ((h ^ lane) * _PRIME) & _MASK
            flat_out[i] = h
        return out

    def probe(self, sorted_hashes, probes):
        # O(table) listify per call: this op only runs in the parity
        # suite (vectorized=False keeps it off every query path).
        table = sorted_hashes.tolist()
        last = len(table) - 1
        pos = np.empty(len(probes), dtype=np.intp)
        hits = []
        for i, p in enumerate(np.asarray(probes).tolist()):
            k = min(bisect_left(table, p), last)
            pos[i] = k
            if table[k] == p:
                hits.append(i)
        return pos, np.asarray(hits, dtype=np.intp)

    def merge(self, results, rows, hit_rows, hit_pos, index: ProbeIndex):
        buckets = index.buckets
        for j, p in zip(np.asarray(hit_rows).tolist(),
                        np.asarray(hit_pos).tolist()):
            bucket = buckets[p]
            if bucket:
                results[rows[j]] |= bucket
