"""The optional ``numba`` kernel backend.

Importing this module requires numba; :mod:`repro.kernels` guards the
import and registers the backend only when it succeeds, so numba is
never a hard dependency (the container image may not ship it — CI and
the property suite self-skip).  The hash and probe loops are compiled
with ``@njit(cache=True)``; the merge stays the numpy columnar one
(set-valued buckets don't lower to nopython mode, and merge is not the
bottleneck once hash+probe are compiled).
"""

from __future__ import annotations

import numpy as np
from numba import njit  # hard import: the registry guards it

from repro.kernels.numpy_impl import NumpyKernel

__all__ = ["NumbaKernel"]

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)


@njit(cache=True)
def _band_hash_flat(lanes, salts, out):  # pragma: no cover - needs numba
    n, r = lanes.shape
    for i in range(n):
        h = _FNV_OFFSET ^ salts[i]
        for c in range(r):
            h = (h ^ lanes[i, c]) * _FNV_PRIME
        out[i] = h


@njit(cache=True)
def _probe_flat(sorted_hashes, probes, pos,
                hits):  # pragma: no cover - needs numba
    m = sorted_hashes.size
    k = 0
    for i in range(probes.size):
        p = probes[i]
        lo, hi = 0, m
        while lo < hi:
            mid = (lo + hi) >> 1
            if sorted_hashes[mid] < p:
                lo = mid + 1
            else:
                hi = mid
        if lo >= m:
            lo = m - 1
        pos[i] = lo
        if sorted_hashes[lo] == p:
            hits[k] = i
            k += 1
    return k


class NumbaKernel(NumpyKernel):
    """Compiled hash + probe; numpy columnar merge."""

    name = "numba"
    vectorized = True

    def band_hash(self, lanes, salt=None):
        lanes = np.ascontiguousarray(lanes, dtype=np.uint64)
        shape = lanes.shape[:-1]
        if salt is None:
            salts = np.zeros(shape, dtype=np.uint64)
        else:
            salts = np.ascontiguousarray(
                np.broadcast_to(np.asarray(salt, dtype=np.uint64), shape))
        out = np.empty(shape, dtype=np.uint64)
        _band_hash_flat(lanes.reshape(-1, lanes.shape[-1]),
                        salts.reshape(-1), out.reshape(-1))
        return out

    def probe(self, sorted_hashes, probes):
        probes = np.ascontiguousarray(probes, dtype=np.uint64)
        pos = np.empty(probes.size, dtype=np.intp)
        hits = np.empty(probes.size, dtype=np.intp)
        k = _probe_flat(np.ascontiguousarray(sorted_hashes,
                                             dtype=np.uint64),
                        probes, pos, hits)
        return pos, hits[:k].copy()
