"""Size and rank distributions for synthetic corpora.

Figure 1 of the paper shows domain sizes in both the Canadian Open Data
repository and the WDC Web Table corpus following a power law.  The
generators here draw discrete power-law (truncated Pareto) sizes by inverse
transform, plus the auxiliary distributions the corpus builder needs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "power_law_sizes",
    "truncated_geometric",
    "zipf_ranks",
]


def power_law_sizes(n: int, alpha: float = 2.0, min_size: int = 10,
                    max_size: int = 100_000,
                    rng: np.random.Generator | None = None,
                    seed: int = 0) -> np.ndarray:
    """Draw ``n`` domain sizes with density ``f(x) ∝ x^-alpha`` on a range.

    Inverse-transform sampling of the continuous truncated Pareto, floored
    to integers.  ``alpha > 1`` is required (Theorem 2's regime).

    Parameters
    ----------
    n:
        Number of sizes.
    alpha:
        Power-law exponent; the paper's corpora are near ``alpha ≈ 2``.
    min_size, max_size:
        Inclusive size bounds; the paper discards domains under 10 values.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a normalisable power law")
    if min_size < 1 or max_size < min_size:
        raise ValueError("need 1 <= min_size <= max_size")
    if rng is None:
        rng = np.random.default_rng(seed)
    u = rng.random(n)
    a1 = alpha - 1.0
    lo = float(min_size)
    hi = float(max_size) + 1.0
    # CDF of truncated Pareto inverted at u.
    x = (lo ** -a1 - u * (lo ** -a1 - hi ** -a1)) ** (-1.0 / a1)
    return np.minimum(np.floor(x).astype(np.int64), max_size)


def truncated_geometric(n: int, p: float, high: int,
                        rng: np.random.Generator | None = None,
                        seed: int = 0) -> np.ndarray:
    """Geometric draws (support ``0..high``), used for domain offsets.

    Small offsets are common, so small domains usually sit at the head of
    their topic vocabulary and are therefore *contained* in the larger
    domains of the same topic — the joinability structure the paper's
    open-data corpora exhibit.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    if high < 0:
        raise ValueError("high must be non-negative")
    if rng is None:
        rng = np.random.default_rng(seed)
    draws = rng.geometric(p, size=n) - 1
    return np.minimum(draws, high).astype(np.int64)


def zipf_ranks(n: int, universe: int, exponent: float = 1.1,
               rng: np.random.Generator | None = None,
               seed: int = 0) -> np.ndarray:
    """``n`` ranks in ``[0, universe)`` with Zipfian frequencies.

    Bounded Zipf via inverse CDF over the finite harmonic weights; used to
    pick which topic a domain belongs to (a few topics dominate a corpus,
    like provinces/years dominate open data).
    """
    if universe < 1:
        raise ValueError("universe must be >= 1")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    if rng is None:
        rng = np.random.default_rng(seed)
    weights = 1.0 / np.power(np.arange(1, universe + 1, dtype=np.float64),
                             exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(n)
    return np.searchsorted(cdf, u).astype(np.int64)
