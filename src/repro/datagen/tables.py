"""Relational table generator — the open-data scenario of Section 1.1.

The paper's motivating use case is finding tables that *join* with a given
table on an attribute (e.g. ``NSERC_GRANT_PARTNER_2011.Partner``).  This
module fabricates corpora of relational tables whose attribute domains have
realistic open-data shapes: categorical attributes drawn from shared value
pools (so joins exist to be found), plus identifier attributes that are
unique per table (so not everything joins).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.corpus import DomainCorpus
from repro.datagen.distributions import power_law_sizes, zipf_ranks

__all__ = ["Table", "TableCorpus", "generate_tables", "ATTRIBUTE_POOLS"]

# Shared value pools modelling common open-data attribute families.  Pools
# are generated lazily at module import; values are short strings like the
# categorical values real open data contains.
_POOL_SPECS = {
    "province": 13,
    "country": 195,
    "city": 1_200,
    "department": 300,
    "fiscal_year": 40,
    "partner_org": 5_000,
    "program": 800,
    "status": 8,
    "industry_code": 2_000,
    "region": 60,
}


def _build_pools() -> dict[str, list[str]]:
    return {
        name: ["%s_%04d" % (name, i) for i in range(size)]
        for name, size in _POOL_SPECS.items()
    }


ATTRIBUTE_POOLS = _build_pools()


@dataclass
class Table:
    """A relational table characterised by its attribute domains."""

    name: str
    domains: dict[str, frozenset] = field(default_factory=dict)

    @property
    def attributes(self) -> list[str]:
        return list(self.domains)

    def domain(self, attribute: str) -> frozenset:
        return self.domains[attribute]

    def __repr__(self) -> str:
        return "Table(%s, %d attributes)" % (self.name, len(self.domains))


class TableCorpus:
    """A collection of tables plus the flat domain view indexes consume."""

    def __init__(self, tables: list[Table]) -> None:
        self.tables = list(tables)
        flat: dict[Hashable, frozenset] = {}
        for table in self.tables:
            for attr, values in table.domains.items():
                flat[(table.name, attr)] = values
        self._corpus = DomainCorpus(flat)

    @property
    def domains(self) -> DomainCorpus:
        """Every ``(table, attribute)`` domain as a :class:`DomainCorpus`."""
        return self._corpus

    def table(self, name: str) -> Table:
        for t in self.tables:
            if t.name == name:
                return t
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.tables)


def generate_tables(num_tables: int = 200, seed: int = 7,
                    id_fraction: float = 0.3) -> TableCorpus:
    """Fabricate ``num_tables`` open-data-like tables.

    Each table gets 2-6 categorical attributes sampled from the shared
    pools (Zipf-weighted, so provinces/years recur across tables the way
    they do in real portals) and, with probability ``id_fraction``, one
    table-unique identifier attribute.  Categorical domains are random
    subsets of their pool with power-law sizes, so cross-table containment
    spans the full range.
    """
    if num_tables < 1:
        raise ValueError("num_tables must be >= 1")
    rng = np.random.default_rng(seed)
    pool_names = list(ATTRIBUTE_POOLS)
    tables: list[Table] = []
    for i in range(num_tables):
        table_name = "table_%04d" % i
        num_attrs = int(rng.integers(2, 7))
        picks = zipf_ranks(num_attrs, len(pool_names), exponent=1.0, rng=rng)
        domains: dict[str, frozenset] = {}
        for j, pick in enumerate(dict.fromkeys(int(p) for p in picks)):
            pool_name = pool_names[pick]
            pool = ATTRIBUTE_POOLS[pool_name]
            max_take = len(pool)
            want = int(power_law_sizes(1, alpha=1.8, min_size=2,
                                       max_size=max_take, rng=rng)[0])
            take = min(want, max_take)
            values = rng.choice(len(pool), size=take, replace=False)
            attr = "%s_%d" % (pool_name, j)
            domains[attr] = frozenset(pool[v] for v in values)
        if rng.random() < id_fraction:
            rows = int(rng.integers(50, 5_000))
            domains["record_id"] = frozenset(
                "%s_id_%06d" % (table_name, r) for r in range(rows)
            )
        tables.append(Table(table_name, domains))
    return TableCorpus(tables)
