"""Query sampling rules used by the evaluation (Section 6.1).

The paper samples 3,000 indexed domains uniformly as queries, and
separately studies queries from the smallest and largest size deciles
(Figures 6 and 7).
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.datagen.corpus import DomainCorpus

__all__ = [
    "sample_queries",
    "smallest_decile_queries",
    "largest_decile_queries",
]


def sample_queries(corpus: DomainCorpus, num_queries: int,
                   seed: int = 13) -> list[Hashable]:
    """Uniform sample of domain keys to use as query domains."""
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    keys = sorted(corpus, key=str)
    rng = np.random.default_rng(seed)
    if num_queries >= len(keys):
        return keys
    picks = rng.choice(len(keys), size=num_queries, replace=False)
    return [keys[i] for i in picks]


def _decile_keys(corpus: DomainCorpus, lowest: bool) -> list[Hashable]:
    ranked = sorted(corpus, key=lambda k: (corpus.size_of(k), str(k)))
    cut = max(1, len(ranked) // 10)
    return ranked[:cut] if lowest else ranked[-cut:]


def smallest_decile_queries(corpus: DomainCorpus, num_queries: int,
                            seed: int = 13) -> list[Hashable]:
    """Queries drawn from the smallest 10% of domains (Figure 7)."""
    pool = _decile_keys(corpus, lowest=True)
    rng = np.random.default_rng(seed)
    if num_queries >= len(pool):
        return pool
    picks = rng.choice(len(pool), size=num_queries, replace=False)
    return [pool[i] for i in picks]


def largest_decile_queries(corpus: DomainCorpus, num_queries: int,
                           seed: int = 13) -> list[Hashable]:
    """Queries drawn from the largest 10% of domains (Figure 6)."""
    pool = _decile_keys(corpus, lowest=False)
    rng = np.random.default_rng(seed)
    if num_queries >= len(pool):
        return pool
    picks = rng.choice(len(pool), size=num_queries, replace=False)
    return [pool[i] for i in picks]
