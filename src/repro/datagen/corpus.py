"""Synthetic domain corpora standing in for the paper's datasets.

The paper evaluates on the Canadian Open Data repository (65,533 domains)
and the English WDC Web Table corpus (262M domains).  Neither ships with
this reproduction, so :func:`generate_corpus` builds corpora with the two
properties the experiments actually exercise:

* **power-law domain sizes** (Figure 1) — sizes drawn from a truncated
  discrete Pareto; and
* **containment structure** — domains are windows into shared *topic
  vocabularies* (a topic models a real-world attribute family: provinces,
  cities, fiscal years, ...).  Window offsets are geometrically
  distributed, so small domains sit at the head of a topic and are largely
  contained in that topic's big domains; containment scores across a
  corpus cover the whole ``[0, 1]`` range.

Ground truth never relies on the generator: experiments always score
against :class:`~repro.exact.inverted.InvertedIndex` over the actual value
sets.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping

import numpy as np

from repro.datagen.distributions import (
    power_law_sizes,
    truncated_geometric,
    zipf_ranks,
)
from repro.minhash.generator import SignatureFactory
from repro.minhash.lean import LeanMinHash

__all__ = ["DomainCorpus", "generate_corpus", "generate_skew_series"]


class DomainCorpus(Mapping):
    """An immutable mapping of domain key -> frozenset of values."""

    def __init__(self, domains: Mapping[Hashable, frozenset]) -> None:
        self._domains = dict(domains)
        self._sizes = {k: len(v) for k, v in self._domains.items()}

    # Mapping interface -------------------------------------------------- #

    def __getitem__(self, key: Hashable) -> frozenset:
        return self._domains[key]

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._domains)

    def __len__(self) -> int:
        return len(self._domains)

    # Corpus-specific helpers -------------------------------------------- #

    @property
    def sizes(self) -> dict[Hashable, int]:
        """Domain key -> cardinality."""
        return dict(self._sizes)

    def size_of(self, key: Hashable) -> int:
        return self._sizes[key]

    def size_array(self) -> np.ndarray:
        """All cardinalities as an array (for partitioners / stats)."""
        return np.asarray(list(self._sizes.values()), dtype=np.int64)

    def signatures(self, num_perm: int = 256, seed: int = 1,
                   ) -> dict[Hashable, LeanMinHash]:
        """MinHash signatures for every domain (shared value cache)."""
        factory = SignatureFactory(num_perm=num_perm, seed=seed)
        return {key: factory.lean(values)
                for key, values in self._domains.items()}

    def entries(self, signatures: Mapping[Hashable, LeanMinHash],
                ) -> list[tuple[Hashable, LeanMinHash, int]]:
        """``(key, signature, size)`` triples for index builders."""
        return [(key, signatures[key], self._sizes[key]) for key in self]

    def restrict_sizes(self, lo: int, hi: int) -> "DomainCorpus":
        """Sub-corpus with sizes in ``[lo, hi]`` (the Figure 5 subsets)."""
        return DomainCorpus({
            k: v for k, v in self._domains.items() if lo <= len(v) <= hi
        })


def generate_corpus(num_domains: int = 2000, alpha: float = 2.0,
                    min_size: int = 10, max_size: int = 20_000,
                    num_topics: int = 50, topic_exponent: float = 1.05,
                    offset_p: float = 0.05, seed: int = 42) -> DomainCorpus:
    """Build a synthetic open-data-like corpus.

    Parameters
    ----------
    num_domains:
        Corpus size (the paper's accuracy corpus has 65,533; benches
        default lower and scale up via environment knobs).
    alpha, min_size, max_size:
        Size distribution (Figure 1 regime).
    num_topics:
        Number of shared vocabularies; fewer topics -> denser containment.
    topic_exponent:
        Zipf exponent of topic popularity.
    offset_p:
        Geometric parameter for window offsets; smaller values spread
        domains deeper into their topic vocabulary (less containment).
    """
    if num_domains < 1:
        raise ValueError("num_domains must be >= 1")
    rng = np.random.default_rng(seed)
    sizes = power_law_sizes(num_domains, alpha, min_size, max_size, rng=rng)
    topics = zipf_ranks(num_domains, num_topics,
                        exponent=topic_exponent, rng=rng)
    # Each topic's vocabulary must cover the largest window into it.
    offsets = truncated_geometric(num_domains, offset_p,
                                  high=4 * max_size, rng=rng)
    domains: dict[Hashable, frozenset] = {}
    for i in range(num_domains):
        topic = int(topics[i])
        size = int(sizes[i])
        offset = int(offsets[i])
        values = frozenset(
            "t%d:%d" % (topic, v) for v in range(offset, offset + size)
        )
        domains["d%06d" % i] = values
    return DomainCorpus(domains)


def generate_skew_series(base_corpus: DomainCorpus,
                         num_subsets: int = 20) -> list[DomainCorpus]:
    """Nested sub-corpora of increasing size-interval width (Figure 5).

    The first subset holds a narrow contiguous band of domain sizes; each
    later subset widens the band, raising the skewness of its size
    distribution exactly as the paper's construction does.
    """
    if num_subsets < 1:
        raise ValueError("num_subsets must be >= 1")
    sizes = np.sort(base_corpus.size_array())
    lo = int(sizes[0])
    hi = int(sizes[-1])
    subsets = []
    for i in range(1, num_subsets + 1):
        # Widen geometrically so skewness grows roughly linearly.
        frac = (i / num_subsets)
        upper = int(round(lo + (hi - lo) ** frac)) if hi > lo else hi
        upper = max(upper, lo + i)
        subsets.append(base_corpus.restrict_sizes(lo, upper))
    return subsets
