"""Synthetic data: power-law corpora, relational tables, query samplers."""

from repro.datagen.corpus import (
    DomainCorpus,
    generate_corpus,
    generate_skew_series,
)
from repro.datagen.distributions import (
    power_law_sizes,
    truncated_geometric,
    zipf_ranks,
)
from repro.datagen.queries import (
    largest_decile_queries,
    sample_queries,
    smallest_decile_queries,
)
from repro.datagen.stream import (
    SignatureBlock,
    stream_signature_blocks,
)
from repro.datagen.tables import (
    ATTRIBUTE_POOLS,
    Table,
    TableCorpus,
    generate_tables,
)

__all__ = [
    "DomainCorpus",
    "generate_corpus",
    "generate_skew_series",
    "power_law_sizes",
    "truncated_geometric",
    "zipf_ranks",
    "sample_queries",
    "smallest_decile_queries",
    "largest_decile_queries",
    "SignatureBlock",
    "stream_signature_blocks",
    "Table",
    "TableCorpus",
    "generate_tables",
    "ATTRIBUTE_POOLS",
]
