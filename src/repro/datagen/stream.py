"""Memory-bounded streaming signature generation for large benchmarks.

The paper's scale experiments run at 262M domains (Section 6.3); even
this repo's 1M-domain kernel roofline cannot afford the value-set
construction of :func:`repro.datagen.corpus.generate_corpus`, which
materialises every domain as a Python ``frozenset`` of strings and
MinHashes them value by value.  :func:`stream_signature_blocks` skips
the value sets entirely and emits the *signatures* directly, block by
block, with two properties the benchmarks need:

* **Bounded memory** — only one block of ``block_rows`` signatures is
  staged at a time, and every block derives from its own
  ``default_rng([seed, block_index])`` stream, so blocks can be
  (re)generated independently and in any order.
* **Realistic signature statistics** — a MinHash lane over a domain of
  ``s`` i.i.d. uniform value hashes is distributed as the minimum of
  ``s`` uniforms; we sample that minimum directly by inverse transform
  (``1 - (1-u)^(1/s)``) instead of drawing the ``s`` values.  Large
  domains therefore get small hash values exactly as real signatures
  do, and a ``dup_fraction`` of rows are near-duplicates of an earlier
  row in the same block (a few lanes resampled) so threshold queries
  have genuine candidate clusters to find instead of pure noise.

The streamed signatures are *synthetic*: no underlying value sets
exist, so exact ground truth is unavailable.  Use these blocks for
throughput/scale work (the kernel roofline, build-rate measurements);
accuracy experiments keep using the corpus generator and scoring
against :class:`~repro.exact.inverted.InvertedIndex`.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.datagen.distributions import power_law_sizes
from repro.minhash.lean import LeanMinHash

__all__ = ["SignatureBlock", "stream_signature_blocks"]


class SignatureBlock:
    """One streamed chunk: keys, sizes, and a signature matrix.

    ``matrix`` is ``(len(keys), num_perm)`` uint64, row-aligned with
    ``keys`` and ``sizes``; ``seed`` is the (shared) permutation seed
    the signatures claim, matching the single-seed regime the indexes
    support.
    """

    __slots__ = ("keys", "sizes", "matrix", "seed")

    def __init__(self, keys: list, sizes: np.ndarray, matrix: np.ndarray,
                 seed: int) -> None:
        self.keys = keys
        self.sizes = sizes
        self.matrix = matrix
        self.seed = seed

    def __len__(self) -> int:
        return len(self.keys)

    def entries(self) -> Iterator[tuple]:
        """Lazy ``(key, LeanMinHash, size)`` triples for index builders."""
        for i, key in enumerate(self.keys):
            yield (key, LeanMinHash(seed=self.seed,
                                    hashvalues=self.matrix[i]),
                   int(self.sizes[i]))


def _block_matrix(rng: np.random.Generator, sizes: np.ndarray,
                  num_perm: int, dup_fraction: float,
                  mutate_lanes: int) -> np.ndarray:
    n = len(sizes)
    # Minimum of `s` uniforms per lane, sampled directly by inverse
    # transform; log1p/expm1 keep precision when s is large and u small.
    u = rng.random((n, num_perm))
    inv_s = (1.0 / sizes.astype(np.float64))[:, None]
    lane_min = -np.expm1(np.log1p(-u) * inv_s)
    matrix = (lane_min * float(2 ** 64)).astype(np.uint64)
    if dup_fraction > 0.0 and n > 1:
        num_dups = int(n * dup_fraction)
        if num_dups:
            children = rng.choice(np.arange(1, n), size=num_dups,
                                  replace=False)
            parents = rng.integers(0, children)  # strictly earlier rows
            matrix[children] = matrix[parents]
            sizes[children] = sizes[parents]
            if mutate_lanes > 0:
                lanes = rng.integers(0, num_perm,
                                     size=(num_dups, mutate_lanes))
                noise = rng.integers(0, 2 ** 63, size=(num_dups,
                                                       mutate_lanes),
                                     dtype=np.uint64)
                # Fancy indexing yields a copy; mutate it and write back.
                sub = matrix[children]
                np.put_along_axis(sub, lanes, noise, axis=1)
                matrix[children] = sub
    return matrix


def stream_signature_blocks(num_domains: int, num_perm: int = 64, *,
                            block_rows: int = 65_536, seed: int = 42,
                            alpha: float = 2.0, min_size: int = 10,
                            max_size: int = 20_000,
                            dup_fraction: float = 0.1,
                            mutate_lanes: int = 2,
                            signature_seed: int = 1,
                            ) -> Iterator[SignatureBlock]:
    """Yield :class:`SignatureBlock` chunks covering ``num_domains`` rows.

    Peak staging memory is one block (``block_rows * num_perm * 8``
    bytes of matrix plus a same-shape float scratch), independent of
    ``num_domains``.  Keys are ``d%09d`` over the global row number;
    sizes follow the corpus generator's truncated-Pareto regime
    (Figure 1); ``dup_fraction`` of each block's rows are
    near-duplicates of an earlier row with ``mutate_lanes`` lanes
    resampled.  The full stream is a pure function of the arguments —
    the same call yields bit-identical blocks every time.
    """
    if num_domains < 1:
        raise ValueError("num_domains must be >= 1")
    if block_rows < 1:
        raise ValueError("block_rows must be >= 1")
    if not 0.0 <= dup_fraction < 1.0:
        raise ValueError("dup_fraction must be in [0, 1)")
    start = 0
    block_idx = 0
    while start < num_domains:
        n = min(block_rows, num_domains - start)
        rng = np.random.default_rng([seed, block_idx])
        sizes = power_law_sizes(n, alpha, min_size, max_size,
                                rng=rng).astype(np.int64)
        matrix = _block_matrix(rng, sizes, num_perm, dup_fraction,
                               mutate_lanes)
        keys = ["d%09d" % i for i in range(start, start + n)]
        yield SignatureBlock(keys, sizes, matrix, signature_seed)
        start += n
        block_idx += 1
