"""Async serving layer: HTTP front end with coalescing and caching.

The paper's system answers domain-search traffic for many users at
once; this package is the layer that exposes a built index (flat,
sharded, or loaded from a snapshot) over HTTP with the three serving
optimisations that matter at that scale: micro-batching of concurrent
requests into the vectorised ``query_batch`` path, a result cache keyed
by the index's mutation epoch, and admission control that sheds load
instead of queueing it unboundedly.  Everything is stdlib asyncio — no
server dependencies.
"""

from repro.serve.cache import MISS, ResultCache
from repro.serve.coalescer import MicroBatchCoalescer, OverloadedError
from repro.serve.engine import ServingEngine, sorted_keys
from repro.serve.server import (
    QueryServer,
    RequestError,
    ServerHandle,
    start_in_thread,
)

__all__ = [
    "MISS",
    "MicroBatchCoalescer",
    "OverloadedError",
    "QueryServer",
    "RequestError",
    "ResultCache",
    "ServerHandle",
    "ServingEngine",
    "sorted_keys",
    "start_in_thread",
]
