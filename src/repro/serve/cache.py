"""Generation-keyed LRU result cache for the serving layer.

Served query results are cached under a key that *includes the index's
mutation epoch* (:attr:`repro.core.ensemble.LSHEnsemble.mutation_epoch`):
``(digest, epoch)`` where ``digest`` already encodes the signature
bytes, seed, size, and query parameters.  Because every ``insert`` /
``remove`` / ``rebalance`` bumps the epoch, a mutation never has to
*find* the affected entries — it makes every pre-mutation key
unreachable at once, and the LRU order drains the dead entries out as
fresh traffic arrives.  Read-only traffic leaves the epoch untouched,
so hot queries keep hitting.

The cache is thread-safe (the coalescer's dispatch thread populates it
while the event loop reads it) and size-bounded; ``capacity=0``
disables caching entirely (every ``get`` is a bypass, no entry is ever
stored), which the benchmark uses to measure raw serving throughput.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["ResultCache", "MISS"]

# Sentinel distinguishing "no entry" from a cached falsy value.
MISS = object()


class ResultCache:
    """Bounded LRU mapping with hit/miss/eviction accounting.

    Parameters
    ----------
    capacity:
        Maximum number of cached entries; inserting beyond it evicts the
        least-recently-used entry.  ``0`` disables the cache.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = int(capacity)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0

    def get(self, key):
        """The cached value for ``key``, or :data:`MISS`.

        A hit refreshes the entry's LRU position.  With ``capacity=0``
        the lookup is a *bypass*, counted separately from misses so a
        disabled cache reads as disabled in ``/stats`` rather than as
        an idle 0/0 cache.
        """
        if self.capacity == 0:
            with self._lock:
                self.bypasses += 1
            return MISS
        with self._lock:
            value = self._entries.get(key, MISS)
            if value is MISS:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        """Store ``value`` under ``key``, evicting LRU entries as needed."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bypasses": self.bypasses,
            }

    def __repr__(self) -> str:
        return "ResultCache(capacity=%d, entries=%d, hits=%d, misses=%d)" % (
            self.capacity, len(self), self.hits, self.misses)
