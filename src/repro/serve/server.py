"""Asyncio HTTP query server (stdlib only) for LSH Ensemble indexes.

The paper's pitch is *internet-scale* domain search; this is the layer
that turns the in-process index into something millions of clients can
actually reach.  One asyncio event loop accepts HTTP/1.1 connections
(keep-alive supported), parses tiny JSON request bodies, and pushes
every query through three stages:

1. **Result cache** — LRU keyed by ``(query digest, mutation epoch)``;
   see :mod:`repro.serve.cache`.  Mutations bump the epoch, so stale
   entries become unreachable without any scanning; read-only traffic
   hits indefinitely.
2. **Micro-batching coalescer** — concurrent cache misses that share
   ``(kind, seed, threshold/k)`` are collected for up to a small window
   (or until ``max_batch``) and answered with *one*
   ``query_batch`` / ``query_top_k_batch`` call; see
   :mod:`repro.serve.coalescer`.  Served throughput therefore inherits
   the vectorised batch-path speedups instead of paying per-request
   Python overhead.
3. **Admission control** — beyond ``max_pending`` queued queries, new
   work is shed with ``503`` + ``Retry-After`` instead of queueing
   unboundedly.

Endpoints::

    GET  /healthz      liveness + key count + generation/epoch
    GET  /stats        tier sizes, drift_stats(), cache + coalescer
    POST /query        {"queries": [...], "threshold": 0.6}
    POST /query_top_k  {"queries": [...], "k": 5, "min_threshold": 0.05}
    POST /signatures   {"keys": [...]} -> stored signatures + sizes
    GET  /snapshot     packed index snapshot (replica bootstrap)
    POST /insert       {"entries": [{"key": ..., <signature|values>}]}
    POST /remove       {"keys": [...]} -> removal flags + new epoch

``/signatures`` and ``/snapshot`` exist for the distributed tier: the
router (:mod:`repro.serve.router`) fetches candidate signatures for
its global top-k ranking through the former, and a new replica
bootstraps its whole index from a peer through the latter.

``/insert`` and ``/remove`` are the write path.  Both are idempotent —
inserting a key the index already holds (or removing an absent one)
reports ``false`` in the per-entry flags instead of failing — so
replica retries and anti-entropy repair shipping are safe.  Responses
carry the post-write ``mutation_epoch``, the consistency token clients
(and the router's quorum accounting) key on.

Each query is either a raw signature —
``{"signature": [u64...], "seed": 1, "size": 123}`` (``size`` optional,
estimated from the signature when absent) — or a value set —
``{"values": ["a", "b", ...]}`` — hashed server-side.  Responses are
deterministic and bit-identical to the in-process batch paths:
``results`` holds one ``sorted(key=str)`` key list (or ``[key, score]``
ranking) per query, plus the ``mutation_epoch`` the answers are valid
for and a per-query ``cached`` flag so operators can tell cached
responses apart from live ones.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time

import numpy as np

from repro.minhash.generator import SignatureFactory
from repro.minhash.lean import LeanMinHash
from repro.serve.cache import MISS, ResultCache
from repro.serve.coalescer import MicroBatchCoalescer, OverloadedError
from repro.serve.engine import ServingEngine
from repro.serve.executor import (
    EpochConsistencyError,
    ShardUnavailableError,
    WriteQuorumError,
)

__all__ = ["QueryServer", "ServerHandle", "start_in_thread",
           "RequestError"]

# Bound on queries inside one HTTP request body: a single request must
# not monopolise the coalescer's admission budget.
MAX_QUERIES_PER_REQUEST = 256
# Bound on keys inside one /signatures request (ladder candidate pools
# are small — k * a few rungs — so this is generous).
MAX_KEYS_PER_REQUEST = 65536
# Bounds on the HTTP request itself — admission control is pointless if
# a single connection can buffer an arbitrarily large body or header
# block instead.
MAX_BODY_BYTES = 16 * 1024 * 1024
MAX_HEADER_LINES = 100
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}


class RequestError(ValueError):
    """A malformed request; maps to an HTTP 400 response."""


def _parse_body(body: bytes) -> dict:
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestError("body is not valid JSON: %s" % exc)
    if not isinstance(data, dict):
        raise RequestError("body must be a JSON object")
    return data


def _parse_threshold(data: dict) -> float | None:
    threshold = data.get("threshold")
    if threshold is None:
        return None
    if not isinstance(threshold, (int, float)) or isinstance(threshold,
                                                             bool):
        raise RequestError("threshold must be a number")
    threshold = float(threshold)
    if not 0.0 <= threshold <= 1.0:
        raise RequestError("threshold must be in [0, 1]")
    return threshold


def _parse_top_k_params(data: dict) -> tuple[int, float]:
    k = data.get("k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise RequestError("k must be an integer >= 1")
    min_threshold = data.get("min_threshold", 0.05)
    if (not isinstance(min_threshold, (int, float))
            or isinstance(min_threshold, bool)
            or not 0.0 < float(min_threshold) <= 1.0):
        raise RequestError("min_threshold must be in (0, 1]")
    return k, float(min_threshold)


class QueryServer:
    """The serving stack around one index; see the module docstring.

    Parameters
    ----------
    index:
        A built flat :class:`~repro.core.ensemble.LSHEnsemble` or
        :class:`~repro.parallel.sharded.ShardedEnsemble`.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    max_batch, window_ms:
        Coalescing knobs: dispatch a batch at ``max_batch`` queries or
        after ``window_ms`` milliseconds, whichever first.
        ``max_batch=1`` disables coalescing (the benchmark baseline).
    cache_size:
        Result-cache capacity; ``0`` disables caching.
    max_pending:
        Admission-control bound on queries queued + in flight; beyond
        it requests are shed with ``503``.
    executor:
        ``"thread"`` (default) answers coalesced batches on the
        coalescer's single worker thread.  ``"process"`` dispatches
        them through a :class:`~repro.parallel.procpool.PooledIndex` —
        sliced across worker processes that ``np.memmap`` the spilled
        v2 segment — so serving scales past one core.  For a
        :class:`~repro.parallel.sharded.ShardedEnsemble` load the
        cluster itself with ``executor="process"`` instead (its own
        fan-out already runs on a pool).
    workers, start_method:
        Process-pool sizing / multiprocessing start method
        (``executor="process"`` only).
    source_path:
        A v2 snapshot on disk matching the index's physical base
        (e.g. the file it was loaded from); saves the initial spill.
        Defaults to the segment the index was loaded from, when known.
    mmap:
        Whether pool workers memory-map the base segment (default) or
        read it into memory (``executor="process"`` only).
    engine:
        A pre-built :class:`~repro.serve.engine.ServingEngine`
        (subclass) to serve through, bypassing the ``executor``-based
        construction — how :class:`~repro.serve.router.RouterServer`
        reuses this whole HTTP stack over a cluster.
    shard_label:
        The shard this node serves, surfaced in ``/healthz`` so the
        router can verify placement and deployment agree.
    """

    def __init__(self, index, host: str = "127.0.0.1", port: int = 0, *,
                 max_batch: int = 64, window_ms: float = 2.0,
                 cache_size: int = 4096, max_pending: int = 1024,
                 executor: str = "thread", workers: int | None = None,
                 start_method: str | None = None,
                 source_path=None, mmap: bool = True,
                 engine: ServingEngine | None = None,
                 shard_label: str | None = None) -> None:
        if engine is None:
            if executor not in ("thread", "process"):
                raise ValueError(
                    "executor must be 'thread' or 'process', got %r"
                    % (executor,))
            pooled = None
            if executor == "process":
                if hasattr(index, "shards"):
                    if getattr(index, "executor", "thread") != "process":
                        raise ValueError(
                            "load the sharded cluster with "
                            "executor='process' instead of wrapping it "
                            "at the serving layer")
                else:
                    from repro.parallel.procpool import PooledIndex

                    pooled = PooledIndex(index, num_workers=workers,
                                         start_method=start_method,
                                         source_path=source_path,
                                         mmap=mmap)
            engine = ServingEngine(index, pooled=pooled)
        self.engine = engine
        self.shard_label = shard_label
        self.cache = ResultCache(cache_size)
        self.coalescer = MicroBatchCoalescer(
            self.engine.dispatch, max_batch=max_batch,
            window_seconds=window_ms / 1000.0, max_pending=max_pending)
        self.host = host
        self.port = int(port)
        self._factory = SignatureFactory(
            num_perm=self.engine.num_perm,
            seed=self.engine.signature_seed())
        self._server: asyncio.base_events.Server | None = None
        self.requests_total = 0
        self.responses_by_status: dict[int, int] = {}
        # Per-request service-time accounting (event-loop only writes;
        # readers snapshot immutable ints/floats).  ``inflight`` is the
        # drain counter load harnesses poll: a run has fully drained
        # once it reaches zero with the coalescer idle.
        self.inflight = 0
        self.latency_count = 0
        self.latency_seconds_total = 0.0
        self.latency_seconds_max = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.coalescer.aclose()
        # The server owns the executor it (or its engine ctor) built:
        # a worker pool is shut down here; in-process executors are
        # no-ops (the caller keeps its index).
        self.engine.executor.close()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line.strip() == b"":
                    break
                try:
                    method, target, _ = (
                        request_line.decode("latin-1").split(None, 2))
                except ValueError:
                    await self._respond(writer, 400,
                                        {"error": "malformed request line"})
                    break
                headers = {}
                header_lines = 0
                header_ok = True
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    # Count lines, not dict entries: repeated same-name
                    # headers must trip the bound too.
                    header_lines += 1
                    if header_lines > MAX_HEADER_LINES:
                        header_ok = False
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                if not header_ok:
                    await self._respond(writer, 400,
                                        {"error": "too many headers"})
                    break
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if not 0 <= length <= MAX_BODY_BYTES:
                    await self._respond(writer, 400,
                                        {"error": "bad content-length"})
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._route(method.upper(),
                                                    target, body)
                keep_alive = headers.get("connection",
                                         "keep-alive").lower() != "close"
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with this connection parked on keep-alive;
            # end the handler quietly instead of logging a cancellation
            # traceback through the protocol callback.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # The handler is already unwinding; nothing left to do
                # for this connection either way.
                pass

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict | bytes,
                       keep_alive: bool = False) -> None:
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1)
        if isinstance(payload, bytes):  # /snapshot streams raw bytes
            body = payload
            content_type = "application/octet-stream"
        else:
            body = json.dumps(payload,
                              separators=(",", ":")).encode("utf-8")
            content_type = "application/json"
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %d\r\n"
                "Connection: %s\r\n"
                % (status, _REASONS.get(status, "Unknown"), content_type,
                   len(body),
                   "keep-alive" if keep_alive else "close"))
        if status == 503:
            head += "Retry-After: %d\r\n" % self.retry_after_hint()
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    def retry_after_hint(self) -> int:
        """Seconds a shed client should back off before retrying.

        The queue drains one batch at a time, so the backlog clears in
        roughly ``ceil(pending / max_batch)`` dispatches of the recent
        mean batch duration, after one collection window.  Advise the
        ceiling of that (at least 1s — sub-second Retry-After rounds to
        0 and invites an immediate retry into the same full queue).
        """
        coalescer = self.coalescer
        batches_left = math.ceil(coalescer._pending
                                 / max(1, coalescer.max_batch))
        completed = coalescer.batches_total
        mean_batch = (coalescer.batch_seconds_total / completed
                      if completed else 0.0)
        drain = coalescer.window_seconds + batches_left * mean_batch
        return max(1, math.ceil(drain))

    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, dict]:
        self.requests_total += 1
        self.inflight += 1
        started = time.perf_counter()
        try:
            return await self._route_inner(method, target, body)
        finally:
            elapsed = time.perf_counter() - started
            self.inflight -= 1
            self.latency_count += 1
            self.latency_seconds_total += elapsed
            if elapsed > self.latency_seconds_max:
                self.latency_seconds_max = elapsed

    async def _route_inner(self, method: str, target: str,
                           body: bytes) -> tuple[int, dict]:
        path = target.split("?", 1)[0]
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET"}
                payload = self.engine.describe()
                if self.shard_label is not None:
                    payload["shard"] = self.shard_label
                return 200, payload
            if path == "/stats":
                if method != "GET":
                    return 405, {"error": "use GET"}
                return 200, self._stats_payload()
            if path == "/query":
                if method != "POST":
                    return 405, {"error": "use POST"}
                return await self._handle_query(body)
            if path == "/query_top_k":
                if method != "POST":
                    return 405, {"error": "use POST"}
                return await self._handle_top_k(body)
            if path == "/signatures":
                if method != "POST":
                    return 405, {"error": "use POST"}
                return await self._handle_signatures(body)
            if path == "/snapshot":
                if method != "GET":
                    return 405, {"error": "use GET"}
                return await self._handle_snapshot()
            if path == "/insert":
                if method != "POST":
                    return 405, {"error": "use POST"}
                return await self._handle_insert(body)
            if path == "/remove":
                if method != "POST":
                    return 405, {"error": "use POST"}
                return await self._handle_remove(body)
            return 404, {"error": "no route for %s" % path}
        except RequestError as exc:
            return 400, {"error": str(exc)}
        except OverloadedError as exc:
            return 503, {"error": "overloaded", "detail": str(exc),
                         "retry_after": self.retry_after_hint()}
        except WriteQuorumError as exc:
            return 503, {"error": "write quorum", "detail": str(exc)}
        except ShardUnavailableError as exc:
            return 503, {"error": "shard unavailable",
                         "detail": str(exc)}
        except EpochConsistencyError as exc:
            return 503, {"error": "epoch consistency",
                         "detail": str(exc)}
        except Exception as exc:  # noqa: BLE001 — serving must not die
            return 500, {"error": "%s: %s" % (type(exc).__name__, exc)}

    def _stats_payload(self) -> dict:
        payload = self.engine.stats()
        payload["cache"] = self.cache.stats()
        payload["coalescer"] = self.coalescer.stats()
        count = self.latency_count
        payload["http"] = {
            "requests_total": self.requests_total,
            "responses_by_status": dict(self.responses_by_status),
            "inflight": self.inflight,
            "latency": {
                "count": count,
                "total_seconds": self.latency_seconds_total,
                "mean_seconds": (self.latency_seconds_total / count
                                 if count else 0.0),
                "max_seconds": self.latency_seconds_max,
            },
        }
        return payload

    # ------------------------------------------------------------------ #
    # Query handling
    # ------------------------------------------------------------------ #

    def _parse_queries(self, data: dict) -> list[tuple[np.ndarray, int,
                                                       int]]:
        """Normalise the ``queries`` array to ``(row, seed, size)``."""
        queries = data.get("queries")
        if not isinstance(queries, list) or not queries:
            raise RequestError("queries must be a non-empty array")
        if len(queries) > MAX_QUERIES_PER_REQUEST:
            raise RequestError(
                "too many queries in one request (%d > %d)"
                % (len(queries), MAX_QUERIES_PER_REQUEST))
        num_perm = self.engine.num_perm
        parsed = []
        for item in queries:
            if not isinstance(item, dict):
                raise RequestError("each query must be a JSON object")
            if "signature" in item:
                signature = item["signature"]
                if (not isinstance(signature, list)
                        or len(signature) != num_perm):
                    raise RequestError(
                        "signature must be an array of %d hash values"
                        % num_perm)
                try:
                    row = np.asarray(signature, dtype=np.uint64)
                except (TypeError, ValueError, OverflowError) as exc:
                    raise RequestError("bad signature values: %s" % exc)
                seed = item.get("seed", 1)
                if not isinstance(seed, int) or isinstance(seed, bool):
                    raise RequestError("seed must be an integer")
                size = item.get("size")
                if size is None:
                    size = max(1, int(LeanMinHash(
                        seed=seed, hashvalues=row).count()))
            elif "values" in item:
                values = item["values"]
                if not isinstance(values, list) or not values:
                    raise RequestError("values must be a non-empty array")
                try:
                    distinct = set(values)
                except TypeError:
                    raise RequestError(
                        "values must be hashable (strings or numbers)")
                lean = self._factory.lean(distinct)
                row, seed, size = lean.hashvalues, lean.seed, len(distinct)
            else:
                raise RequestError(
                    "each query needs a \"signature\" or \"values\" field")
            if size is not None:
                if not isinstance(size, int) or isinstance(size, bool) \
                        or size < 1:
                    raise RequestError("size must be an integer >= 1")
            parsed.append((row, int(seed), int(size)))
        return parsed

    async def _answer(self, group_key_of, parsed) -> tuple[int, dict]:
        """Shared cache → coalescer → response path for both POST routes.

        ``group_key_of(seed)`` builds the coalescing group key (which
        pins every query parameter except the signature itself).  The
        epoch is read *before* any query dispatches: a result computed
        later can only reflect state at that epoch or newer, and any
        newer state has already bumped the epoch — so an entry cached
        under epoch E is never stale for a reader observing E.  (The
        converse imprecision is accepted: under a mutation racing the
        dispatch, a response labelled E may reflect slightly fresher
        state; reading the epoch *after* dispatch instead would cache
        genuinely stale results under the new epoch, which is the
        failure mode that actually matters.)
        """
        epoch = self.engine.mutation_epoch
        cached_flags = []
        results: list = [None] * len(parsed)
        pending: list[tuple[int, bytes, asyncio.Future]] = []
        for j, (row, seed, size) in enumerate(parsed):
            group_key = group_key_of(seed)
            digest = self.engine.digest(group_key, row, size)
            hit = self.cache.get((digest, epoch))
            if hit is not MISS:
                results[j] = hit
                cached_flags.append(True)
            else:
                cached_flags.append(False)
                pending.append((j, digest, asyncio.ensure_future(
                    self.coalescer.submit(group_key, (row, size)))))
        if pending:
            answers = await asyncio.gather(
                *(future for _, __, future in pending),
                return_exceptions=True)
            for (j, digest, _), answer in zip(pending, answers):
                if isinstance(answer, BaseException):
                    raise answer
                results[j] = answer
                self.cache.put((digest, epoch), answer)
        return 200, self._finalise_payload({
            "mutation_epoch": epoch,
            "generation": self.engine.generation,
            "cached": cached_flags,
            "results": results,
        })

    def _finalise_payload(self, payload: dict) -> dict:
        """Last touch on a query response before it is serialised;
        subclasses (the router) re-label the epoch and attach
        degradation markers here."""
        return payload

    async def _handle_query(self, body: bytes) -> tuple[int, dict]:
        data = _parse_body(body)
        threshold = _parse_threshold(data)
        parsed = self._parse_queries(data)
        return await self._answer(
            lambda seed: ("query", seed, threshold), parsed)

    async def _handle_top_k(self, body: bytes) -> tuple[int, dict]:
        data = _parse_body(body)
        k, min_threshold = _parse_top_k_params(data)
        parsed = self._parse_queries(data)
        return await self._answer(
            lambda seed: ("top_k", seed, k, min_threshold), parsed)

    # ------------------------------------------------------------------ #
    # Distributed-tier endpoints
    # ------------------------------------------------------------------ #

    def _signatures_snapshot(self, wanted: list) -> tuple[int, list]:
        # Same pre-read rule as _answer: data fetched after the epoch
        # read can only be as-new-or-newer than the label.
        epoch = self.engine.mutation_epoch
        pool, sizes = self.engine.signatures_for(wanted)
        found = [[key, int(signature.seed), int(sizes[key]),
                  [int(v) for v in signature.hashvalues]]
                 for key, signature in pool.items()]
        return epoch, found

    async def _handle_signatures(self, body: bytes) -> tuple[int, dict]:
        from repro.serve.remote import restore_key

        data = _parse_body(body)
        keys = data.get("keys")
        if not isinstance(keys, list):
            raise RequestError("keys must be an array")
        if len(keys) > MAX_KEYS_PER_REQUEST:
            raise RequestError(
                "too many keys in one request (%d > %d)"
                % (len(keys), MAX_KEYS_PER_REQUEST))
        wanted = [restore_key(key) for key in keys]
        loop = asyncio.get_running_loop()
        epoch, found = await loop.run_in_executor(
            None, self._signatures_snapshot, wanted)
        return 200, {"mutation_epoch": epoch, "found": found}

    async def _handle_snapshot(self) -> tuple[int, dict | bytes]:
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            None, self.engine.snapshot_bytes)
        if payload is None:
            return 404, {"error": "this topology has no snapshot"}
        return 200, payload

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def _parse_entries(self, data: dict) -> list[tuple]:
        """Normalise the ``entries`` array to ``(key, lean, size)``."""
        from repro.serve.remote import restore_key

        entries = data.get("entries")
        if not isinstance(entries, list) or not entries:
            raise RequestError("entries must be a non-empty array")
        if len(entries) > MAX_QUERIES_PER_REQUEST:
            raise RequestError(
                "too many entries in one request (%d > %d)"
                % (len(entries), MAX_QUERIES_PER_REQUEST))
        num_perm = self.engine.num_perm
        parsed = []
        for item in entries:
            if not isinstance(item, dict) or "key" not in item:
                raise RequestError(
                    "each entry must be an object with a \"key\" field")
            key = restore_key(item["key"])
            if "signature" in item:
                signature = item["signature"]
                if (not isinstance(signature, list)
                        or len(signature) != num_perm):
                    raise RequestError(
                        "signature must be an array of %d hash values"
                        % num_perm)
                try:
                    row = np.asarray(signature, dtype=np.uint64)
                except (TypeError, ValueError, OverflowError) as exc:
                    raise RequestError("bad signature values: %s" % exc)
                seed = item.get("seed", 1)
                if not isinstance(seed, int) or isinstance(seed, bool):
                    raise RequestError("seed must be an integer")
                if int(seed) != self._factory.seed:
                    # Stored entries share one permutation seed; an
                    # insert under a different seed would never compare
                    # meaningfully against the rest of the corpus.
                    raise RequestError(
                        "signature seed %d does not match the index "
                        "seed %d" % (seed, self._factory.seed))
                lean = LeanMinHash(seed=int(seed), hashvalues=row)
                size = item.get("size")
                if size is None:
                    size = max(1, int(lean.count()))
            elif "values" in item:
                values = item["values"]
                if not isinstance(values, list) or not values:
                    raise RequestError("values must be a non-empty array")
                try:
                    distinct = set(values)
                except TypeError:
                    raise RequestError(
                        "values must be hashable (strings or numbers)")
                lean = self._factory.lean(distinct)
                size = len(distinct)
            else:
                raise RequestError(
                    "each entry needs a \"signature\" or \"values\" field")
            if not isinstance(size, int) or isinstance(size, bool) \
                    or size < 1:
                raise RequestError("size must be an integer >= 1")
            parsed.append((key, lean, int(size)))
        return parsed

    async def _handle_insert(self, body: bytes) -> tuple[int, dict]:
        data = _parse_body(body)
        parsed = self._parse_entries(data)
        loop = asyncio.get_running_loop()
        applied, epoch = await loop.run_in_executor(
            None, self.engine.apply_inserts, parsed)
        return 200, {"applied": [bool(flag) for flag in applied],
                     "mutation_epoch": int(epoch)}

    async def _handle_remove(self, body: bytes) -> tuple[int, dict]:
        from repro.serve.remote import restore_key

        data = _parse_body(body)
        keys = data.get("keys")
        if not isinstance(keys, list) or not keys:
            raise RequestError("keys must be a non-empty array")
        if len(keys) > MAX_KEYS_PER_REQUEST:
            raise RequestError(
                "too many keys in one request (%d > %d)"
                % (len(keys), MAX_KEYS_PER_REQUEST))
        wanted = [restore_key(key) for key in keys]
        loop = asyncio.get_running_loop()
        removed, epoch = await loop.run_in_executor(
            None, self.engine.apply_removes, wanted)
        return 200, {"removed": [bool(flag) for flag in removed],
                     "mutation_epoch": int(epoch)}


# --------------------------------------------------------------------- #
# Background-thread harness (tests, benchmarks, demos)
# --------------------------------------------------------------------- #


class ServerHandle:
    """A running :class:`QueryServer` on a background event loop."""

    def __init__(self) -> None:
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self.server: QueryServer | None = None
        self.error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def engine(self) -> ServingEngine:
        return self.server.engine

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_in_thread(index, server_factory=QueryServer,
                    **kwargs) -> ServerHandle:
    """Start a :class:`QueryServer` on a daemon thread; returns once the
    socket is bound (so :attr:`ServerHandle.port` is usable immediately).

    ``server_factory`` swaps in a subclass (e.g.
    :class:`~repro.serve.router.RouterServer`, with ``index`` then being
    the :class:`~repro.serve.router.RouterIndex`).
    """
    handle = ServerHandle()

    async def _main() -> None:
        server = server_factory(index, **kwargs)
        try:
            await server.start()
        except BaseException as exc:
            handle.error = exc
            handle._ready.set()
            # The constructor may already own resources (a process
            # pool, the coalescer's worker thread); a failed bind must
            # not leak them.
            await server.aclose()
            raise
        handle.server = server
        handle._loop = asyncio.get_running_loop()
        handle._stop = asyncio.Event()
        handle._ready.set()
        try:
            await handle._stop.wait()
        finally:
            await server.aclose()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except BaseException as exc:  # surfaced via handle.error
            if handle.error is None:
                handle.error = exc
            handle._ready.set()

    handle._thread = threading.Thread(
        target=_runner, name="lshensemble-server", daemon=True)
    handle._thread.start()
    if not handle._ready.wait(timeout=30):
        raise RuntimeError("server failed to start within 30s")
    if handle.error is not None:
        raise RuntimeError("server failed to start") from handle.error
    return handle
