"""The shard-executor interface: *where* a batch of queries executes.

PR 4's serving engine dispatched straight onto the wrapped index; PR 5
bolted the process pool on beside it.  Multi-node serving adds a third
backend — a shard-node server reached over HTTP — and juggling three
ad-hoc targets inside the engine (and a fourth inside the router) does
not scale.  This module names the contract once:

:class:`ShardExecutor` is the query surface for **one shard backend** —
the four vectorised/batch query paths, the single-query forms, the
candidate-pool fetch the global top-k ladder needs, and the mutation
epoch that stamps every answer.  Implementations:

* :class:`InProcessExecutor` — today's path: the built index object
  itself (flat :class:`~repro.core.ensemble.LSHEnsemble` or a whole
  :class:`~repro.parallel.sharded.ShardedEnsemble`).
* :class:`ProcPoolExecutor` — PR 5's
  :class:`~repro.parallel.procpool.PooledIndex`: batches row-sliced
  across worker processes over shared mmap segments.
* :class:`~repro.serve.remote.RemoteShardExecutor` — keep-alive HTTP to
  a shard-node server (with replica failover); lives in
  :mod:`repro.serve.remote` so *all* network transport is in one module
  (enforced by lint rule RL007).

The serving engine talks only to this interface; the router tier
(:mod:`repro.serve.router`) composes many remote executors behind the
same engine.  Results are bit-identical across implementations — the
``tests/distributed`` parity battery pins it.
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Sequence

__all__ = ["ShardExecutor", "InProcessExecutor", "ProcPoolExecutor",
           "ShardUnavailableError", "EpochConsistencyError",
           "WriteQuorumError", "make_executor"]


class ShardUnavailableError(RuntimeError):
    """Every replica of a shard failed (or timed out); the query cannot
    be answered completely.  The HTTP layer maps it to ``503`` — the
    condition is transient (a replica restart / failover away)."""


class WriteQuorumError(RuntimeError):
    """Fewer replicas than the configured write quorum acknowledged a
    mutation.  The write may have landed on a minority of replicas —
    the anti-entropy sweep reconciles them — but it is **not acked**:
    the HTTP layer maps this to ``503`` and the client must retry
    (mutations are idempotent, so retrying a partially applied write is
    safe)."""


class EpochConsistencyError(RuntimeError):
    """A multi-round query (the top-k ladder) observed a shard at two
    different mutation epochs and exhausted its restart budget; the
    response would have mixed pre- and post-mutation state.  Mapped to
    ``503`` — an immediate retry starts a fresh, consistent ladder."""


class ShardExecutor(abc.ABC):
    """Query surface for one shard backend; see the module docstring.

    The five query paths mirror the index surface exactly
    (``query`` / ``query_batch`` / ``query_top_k`` /
    ``query_top_k_batch`` plus the signature/size pool fetch that backs
    global top-k ranking), so an executor can stand in anywhere an
    index could answer queries.
    """

    #: Human-readable transport kind ("thread" / "process" / "remote").
    kind: str = "thread"

    # ---------------------- the five query paths -------------------- #

    @abc.abstractmethod
    def query_batch(self, batch, sizes: Sequence[int] | None = None,
                    threshold: float | None = None) -> list[set]:
        """One result set per batch row (vectorised threshold path)."""

    @abc.abstractmethod
    def query_top_k_batch(self, batch, k: int,
                          sizes: Sequence[int] | None = None,
                          min_threshold: float = 0.05) -> list[list]:
        """One ``[(key, score), ...]`` ranking per batch row."""

    @abc.abstractmethod
    def query(self, signature, size: int | None = None,
              threshold: float | None = None) -> set:
        """Single-signature threshold query."""

    @abc.abstractmethod
    def query_top_k(self, signature, k: int, size: int | None = None,
                    min_threshold: float = 0.05) -> list:
        """Single-signature top-k ranking."""

    @abc.abstractmethod
    def signatures_for(self, keys: Sequence[Hashable],
                       ) -> tuple[dict, dict]:
        """``(signatures, sizes)`` for the keys this shard holds.

        Keys the shard does not hold are silently absent — the router
        unions candidate pools across shards, so absence means "someone
        else's key", not an error.
        """

    # ------------------------- the write path ----------------------- #

    def insert_entries(self, entries: Sequence[tuple],
                       quorum: int | None = None,
                       ) -> tuple[list[bool], int]:
        """Apply ``(key, signature, size)`` inserts to this shard.

        Idempotent: a key the shard already holds is skipped and
        reported ``False`` in the applied-flags list (not an error), so
        replica retries and repair shipping are safe.  Returns the
        flags plus the shard's post-write mutation epoch — the
        consistency token the caller hands back to clients.  ``quorum``
        is meaningful only for replicated (remote) executors; a
        single-backend executor either applies or raises.
        """
        raise NotImplementedError("%s does not accept writes" % self.kind)

    def remove_keys(self, keys: Sequence[Hashable],
                    quorum: int | None = None,
                    ) -> tuple[list[bool], int]:
        """Apply removals; absent keys report ``False``, not errors."""
        raise NotImplementedError("%s does not accept writes" % self.kind)

    # ----------------------- epoch observation ---------------------- #

    @property
    @abc.abstractmethod
    def mutation_epoch(self) -> int:
        """The epoch the *next* answer is expected to reflect (for
        remote executors: the last epoch observed on the wire)."""

    def query_batch_with_epoch(self, batch,
                               sizes: Sequence[int] | None = None,
                               threshold: float | None = None,
                               ) -> tuple[list[set], int]:
        """``query_batch`` plus the epoch the answers reflect.

        The in-process default reads the epoch *before* dispatching —
        any mutation racing the dispatch has either already bumped it
        (answer is newer than the label, the accepted imprecision) or
        lands after (label exact).  Remote executors override this with
        the epoch carried in the response itself.
        """
        epoch = self.mutation_epoch
        return self.query_batch(batch, sizes=sizes,
                                threshold=threshold), epoch

    # -------------------------- lifecycle --------------------------- #

    def describe(self) -> dict:
        """Transport-level description merged into ``/healthz``."""
        return {"executor": self.kind}

    def stats(self) -> dict:
        """Transport-level counters merged into ``/stats``."""
        return {"executor": self.kind}

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release transport resources (pools, connections)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _IndexBackedExecutor(ShardExecutor):
    """Shared plumbing for executors whose queries land on an
    in-process index object (directly or through a worker pool)."""

    def __init__(self, target, index) -> None:
        # ``target`` answers queries; ``index`` is the authoritative
        # in-process object for introspection (signatures, epoch).
        self._target = target
        self._index = index

    def query_batch(self, batch, sizes=None, threshold=None):
        return self._target.query_batch(batch, sizes=sizes,
                                        threshold=threshold)

    def query_top_k_batch(self, batch, k, sizes=None, min_threshold=0.05):
        return self._target.query_top_k_batch(
            batch, k, sizes=sizes, min_threshold=min_threshold)

    def query(self, signature, size=None, threshold=None):
        return self._target.query(signature, size, threshold)

    def query_top_k(self, signature, k, size=None, min_threshold=0.05):
        return self._target.query_top_k(signature, k, size=size,
                                        min_threshold=min_threshold)

    def signatures_for(self, keys):
        shards = (self._index.shards
                  if hasattr(self._index, "shards") else [self._index])
        pool: dict = {}
        sizes: dict = {}
        for key in keys:
            for shard in shards:
                if key in shard:
                    pool[key] = shard.get_signature(key)
                    sizes[key] = shard.size_of(key)
                    break
        return pool, sizes

    def _holds(self, key) -> bool:
        shards = (self._index.shards
                  if hasattr(self._index, "shards") else [self._index])
        return any(key in shard for shard in shards)

    def insert_entries(self, entries, quorum=None):
        applied = []
        for key, signature, size in entries:
            if self._holds(key):
                applied.append(False)
                continue
            self._index.insert(key, signature, int(size))
            applied.append(True)
        return applied, int(self._index.mutation_epoch)

    def remove_keys(self, keys, quorum=None):
        removed = []
        for key in keys:
            if not self._holds(key):
                removed.append(False)
                continue
            self._index.remove(key)
            removed.append(True)
        return removed, int(self._index.mutation_epoch)

    @property
    def mutation_epoch(self) -> int:
        return int(self._index.mutation_epoch)

    @property
    def index(self):
        return self._index


class InProcessExecutor(_IndexBackedExecutor):
    """Today's path: dispatch straight onto the built index object."""

    kind = "thread"

    def __init__(self, index) -> None:
        super().__init__(index, index)


class ProcPoolExecutor(_IndexBackedExecutor):
    """Dispatch through a :class:`~repro.parallel.procpool.PooledIndex`
    — batches row-sliced across worker processes that ``np.memmap`` the
    spilled base segment.  Introspection reads the authoritative
    in-process index the adapter wraps."""

    kind = "process"

    def __init__(self, pooled) -> None:
        super().__init__(pooled, pooled.index)
        self.pooled = pooled

    def stats(self) -> dict:
        return {"executor": self.kind, "pool": self.pooled.pool.stats()}

    def close(self) -> None:
        self.pooled.close()


def make_executor(index, pooled=None) -> ShardExecutor:
    """The executor for an index (+ optional pool adapter): the
    back-compat construction path the serving engine uses."""
    if pooled is not None:
        return ProcPoolExecutor(pooled)
    return InProcessExecutor(index)
