"""Uniform serving facade over flat and sharded ensembles.

The HTTP layer should not care whether it fronts a single
:class:`~repro.core.ensemble.LSHEnsemble` (freshly built, or loaded
from a v2 snapshot / dynamic manifest directory) or a whole
:class:`~repro.parallel.sharded.ShardedEnsemble` cluster.
:class:`ServingEngine` normalises the few points where their surfaces
differ (``num_perm`` lives on the shards, drift reports nest), turns
coalesced batches into the appropriate vectorised ``query_batch`` /
``query_top_k_batch`` call, and canonicalises results into
JSON-serialisable, deterministically ordered form — the exact same
ordering for the same inputs regardless of topology, which is what the
served-parity golden tests pin.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.minhash.batch import SignatureBatch
from repro.serve.executor import make_executor

__all__ = ["ServingEngine", "sorted_keys"]


def sorted_keys(found: set) -> list:
    """Canonical result ordering: the CLI's ``sorted(found, key=str)``."""
    return sorted(found, key=str)


class ServingEngine:
    """Dispatch/introspection adapter around one index (flat or sharded).

    Parameters
    ----------
    index:
        A built :class:`~repro.core.ensemble.LSHEnsemble` or
        :class:`~repro.parallel.sharded.ShardedEnsemble`.
    pooled:
        Optional :class:`~repro.parallel.procpool.PooledIndex` over the
        same flat ``index``.  When present, coalesced batches dispatch
        through it — sliced across worker processes over the shared
        mmap segments — instead of running on the coalescer's single
        GIL-bound thread.  Results are bit-identical either way;
        introspection (epoch, tier sizes, signature seed) always reads
        the authoritative in-process index.
    executor:
        A pre-built :class:`~repro.serve.executor.ShardExecutor` to
        dispatch through instead of deriving one from
        ``index``/``pooled`` — every query the engine answers goes
        through this single interface, whatever the backend (thread,
        process pool, or the router's remote fan-out).
    """

    def __init__(self, index, pooled=None, executor=None) -> None:
        self.index = index
        self.pooled = pooled
        self.executor = (executor if executor is not None
                         else make_executor(index, pooled))

    @property
    def _query_target(self):
        """Where batches execute: always the shard executor."""
        return self.executor

    @property
    def executor_kind(self) -> str:
        """``"process"`` when batches run on a worker pool (flat pooled
        adapter, or a process-mode sharded cluster), else ``"thread"``."""
        if self.pooled is not None:
            return "process"
        return ("process"
                if getattr(self.index, "executor", "thread") == "process"
                else "thread")

    def _pool(self):
        if self.pooled is not None:
            return self.pooled.pool
        return getattr(self.index, "_pool", None)

    # ------------------------------------------------------------------ #
    # Normalised introspection
    # ------------------------------------------------------------------ #

    @property
    def num_perm(self) -> int:
        num_perm = getattr(self.index, "num_perm", None)
        if num_perm is not None:
            return int(num_perm)
        return int(self.index.shards[0].num_perm)

    @property
    def mutation_epoch(self) -> int:
        return int(self.index.mutation_epoch)

    @property
    def generation(self) -> int:
        return int(self.index.generation)

    @property
    def is_sharded(self) -> bool:
        return hasattr(self.index, "shards")

    @property
    def kernel_name(self) -> str:
        """Name of the hot-loop kernel backend answering queries."""
        index = (self.index.shards[0] if self.is_sharded else self.index)
        return index.kernel.name

    @property
    def bbit(self) -> int | None:
        """b-bit band-key packing width (None = full 64-bit keys)."""
        index = (self.index.shards[0] if self.is_sharded else self.index)
        return index.bbit

    def signature_seed(self) -> int:
        """The permutation seed of the stored signatures.

        Server-side hashing of ``values`` payloads must use the same
        seed the index was built with, or the comparison is
        meaningless; sample it from any stored signature (one shared
        seed per index is the supported regime — mixed-seed entries are
        not comparable to each other either).
        """
        index = (self.index.shards[0] if self.is_sharded else self.index)
        for key in index.keys():
            return int(index.get_signature(key).seed)
        return 1

    def signatures_for(self, keys) -> tuple[dict, dict]:
        """``(signatures, sizes)`` for the stored keys this engine's
        backend holds (the ``POST /signatures`` endpoint)."""
        return self.executor.signatures_for(keys)

    def apply_inserts(self, entries) -> tuple[list[bool], int]:
        """Apply ``(key, signature, size)`` inserts through the
        executor (the ``POST /insert`` endpoint).  Idempotent: already
        present keys come back ``False`` in the applied-flags list.
        Returns the flags plus the post-write mutation epoch — the
        consistency token the response carries."""
        return self.executor.insert_entries(entries)

    def apply_removes(self, keys) -> tuple[list[bool], int]:
        """Apply removals (the ``POST /remove`` endpoint); absent keys
        come back ``False``."""
        return self.executor.remove_keys(keys)

    def snapshot_bytes(self) -> bytes | None:
        """The index packed for replica bootstrap (``GET /snapshot``);
        ``None`` when the topology has no single index to ship."""
        from repro.persistence import pack_snapshot_bytes

        return pack_snapshot_bytes(self.index)

    def describe(self) -> dict:
        """The ``/healthz`` payload: liveness plus version counters."""
        return {
            "status": "ok",
            "index": type(self.index).__name__,
            "keys": len(self.index),
            "num_perm": self.num_perm,
            "generation": self.generation,
            "mutation_epoch": self.mutation_epoch,
            "executor": self.executor_kind,
            "kernel": self.kernel_name,
            "bbit": self.bbit,
            "signature_seed": self.signature_seed(),
        }

    def stats(self) -> dict:
        """Tier sizes and the full drift report (``/stats`` core)."""
        drift = self.index.drift_stats()
        payload = {
            "index": type(self.index).__name__,
            "keys": len(self.index),
            "generation": self.generation,
            "mutation_epoch": self.mutation_epoch,
            "executor": self.executor_kind,
            "kernel": self.kernel_name,
            "bbit": self.bbit,
            "tiers": {
                "base": drift["base_keys"],
                "delta": drift["delta_keys"],
                "tombstones": drift["tombstones"],
            },
            "drift": drift,
        }
        pool = self._pool()
        if pool is not None:
            payload["pool"] = pool.stats()
        return payload

    # ------------------------------------------------------------------ #
    # Batched dispatch (called from the coalescer's worker thread)
    # ------------------------------------------------------------------ #

    def dispatch(self, group_key, payloads) -> list:
        """Answer one coalesced group through the vectorised batch path.

        ``group_key`` is ``("query", seed, threshold)`` or
        ``("top_k", seed, k, min_threshold)``; ``payloads`` is a list of
        ``(hashvalues_row, size)``.  Returns one JSON-ready result per
        payload: a ``sorted(..., key=str)`` key list for threshold
        queries, a ``[key, score]`` ranking for top-k.
        """
        kind, seed = group_key[0], group_key[1]
        matrix = np.vstack([row for row, _ in payloads])
        sizes = [size for _, size in payloads]
        batch = SignatureBatch(None, matrix, seed=seed)
        target = self._query_target
        if kind == "query":
            threshold = group_key[2]
            found = target.query_batch(batch, sizes=sizes,
                                       threshold=threshold)
            return [sorted_keys(f) for f in found]
        if kind == "top_k":
            k, min_threshold = group_key[2], group_key[3]
            ranked = target.query_top_k_batch(
                batch, k, sizes=sizes, min_threshold=min_threshold)
            return [[[key, float(score)] for key, score in row]
                    for row in ranked]
        raise ValueError("unknown dispatch kind %r" % (kind,))

    @staticmethod
    def digest(group_key, row: np.ndarray, size: int) -> bytes:
        """Cache digest of one query: parameters + signature bytes.

        Combined with the mutation epoch by the caller, this forms the
        full cache key; two requests digest equal iff they would be
        answered from identical inputs.
        """
        h = hashlib.sha1()
        h.update(repr((group_key, int(size))).encode("utf-8"))
        h.update(np.ascontiguousarray(row).tobytes())
        return h.digest()
