"""Consistent-hash placement: which nodes serve which shard.

The router owns a :class:`PlacementMap` built from a cluster manifest.
Placement uses a classic sha1 hash ring with virtual nodes: each node
contributes ``vnodes`` points on a 2^63 ring, and a shard's replicas
are the first ``replication`` *distinct* nodes clockwise from the
shard's own ring point.  Two properties matter here and are pinned by
``tests/distributed/test_placement.py``:

* **determinism** — placement is a pure function of (node names,
  vnodes, replication, shard name); every router instance reading the
  same manifest computes the same map, with no coordination service.
* **minimal movement** — adding or removing one node only remaps the
  ring arcs that node owned: shards not adjacent to its vnodes keep
  their replica sets, so a rebalance ships a bounded number of
  snapshots rather than reshuffling the world.

The manifest is deliberately dumb JSON (see :func:`load_manifest`)::

    {
      "replication": 2,
      "nodes": {"n1": "127.0.0.1:8101", "n2": "127.0.0.1:8102"},
      "shards": ["shard_000", "shard_001", ...]
    }

``shards`` may instead be an explicit ``{shard: [node, ...]}`` mapping
for operators who want hand-pinned placement; the ring is then bypassed
for those shards (used by the decommission tests to force traffic onto
a specific node).
"""

from __future__ import annotations

import bisect
import hashlib
import json
from collections.abc import Mapping, Sequence
from pathlib import Path

__all__ = ["PlacementMap", "ClusterManifest", "load_manifest",
           "parse_endpoint", "owning_shard"]

#: Ring points contributed per node: enough to keep the per-node load
#: spread within a few percent for the cluster sizes we target (2-64
#: nodes) while keeping ring construction trivially cheap.
DEFAULT_VNODES = 64


def _ring_hash(token: str) -> int:
    """A stable 63-bit ring position (sha1, independent of
    ``PYTHONHASHSEED`` — determinism across processes is the point)."""
    digest = hashlib.sha1(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def parse_endpoint(address: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``; the only address syntax."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError("endpoint %r is not host:port" % (address,))
    return host, int(port)


def owning_shard(key, shards: Sequence[str]) -> str:
    """The shard a *key* mutation routes to: the same placement
    function lookups use, applied one level down.

    Deterministic across processes (sha1 of ``repr(key)``, same rule
    as the ring) so every router instance — and the repair sweep —
    agrees on ownership with no coordination.  Keys that predate hash
    routing may live elsewhere; removal falls back to a
    broadcast-locate for exactly that reason.
    """
    if not shards:
        raise ValueError("owning_shard needs at least one shard")
    ordered = sorted(shards)
    return ordered[_ring_hash("key:%r" % (key,)) % len(ordered)]


class PlacementMap:
    """The shard -> replica-nodes assignment for one cluster state.

    Immutable by convention: rebalance builds a *new* map (via
    :meth:`without_node` / :meth:`with_node`) and the router swaps it in
    atomically, so a half-applied topology is never observable.
    """

    def __init__(self, nodes: Mapping[str, str], *,
                 replication: int = 1, vnodes: int = DEFAULT_VNODES,
                 pinned: Mapping[str, Sequence[str]] | None = None,
                 ) -> None:
        if not nodes:
            raise ValueError("placement needs at least one node")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.nodes = dict(nodes)          # name -> "host:port"
        self.replication = int(replication)
        self.vnodes = int(vnodes)
        self.pinned = {shard: list(assigned)
                       for shard, assigned in (pinned or {}).items()}
        for shard, assigned in self.pinned.items():
            missing = [n for n in assigned if n not in self.nodes]
            if missing:
                raise ValueError("shard %r pinned to unknown node(s) %s"
                                 % (shard, missing))
        # The ring: sorted (position, node-name) points.
        points = []
        for name in sorted(self.nodes):
            for i in range(self.vnodes):
                points.append((_ring_hash("%s#%d" % (name, i)), name))
        points.sort()
        self._positions = [pos for pos, _ in points]
        self._owners = [name for _, name in points]

    # --------------------------- lookups ---------------------------- #

    def replicas_for(self, shard: str) -> list[str]:
        """The ``min(replication, len(nodes))`` distinct node names
        serving ``shard``, primary first."""
        if shard in self.pinned:
            return list(self.pinned[shard])
        want = min(self.replication, len(self.nodes))
        start = bisect.bisect_left(self._positions, _ring_hash(shard))
        chosen: list[str] = []
        for step in range(len(self._owners)):
            owner = self._owners[(start + step) % len(self._owners)]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == want:
                    break
        return chosen

    def endpoints_for(self, shard: str) -> list[tuple[str, int]]:
        return [parse_endpoint(self.nodes[name])
                for name in self.replicas_for(shard)]

    def assignment(self, shards: Sequence[str]) -> dict[str, list[str]]:
        return {shard: self.replicas_for(shard) for shard in shards}

    # ------------------------ topology edits ------------------------ #

    def without_node(self, name: str) -> "PlacementMap":
        """The map with ``name`` removed (decommission target)."""
        if name not in self.nodes:
            raise KeyError(name)
        nodes = {n: addr for n, addr in self.nodes.items() if n != name}
        pinned = {shard: [n for n in assigned if n != name]
                  for shard, assigned in self.pinned.items()}
        pinned = {shard: assigned for shard, assigned in pinned.items()
                  if assigned}
        return PlacementMap(nodes, replication=self.replication,
                            vnodes=self.vnodes, pinned=pinned)

    def with_node(self, name: str, address: str) -> "PlacementMap":
        """The map with ``name`` added (bootstrap target)."""
        nodes = dict(self.nodes)
        nodes[name] = address
        return PlacementMap(nodes, replication=self.replication,
                            vnodes=self.vnodes, pinned=self.pinned)

    def describe(self) -> dict:
        return {"nodes": dict(self.nodes),
                "replication": self.replication,
                "vnodes": self.vnodes,
                "pinned": {s: list(a) for s, a in self.pinned.items()}}


class ClusterManifest:
    """Parsed cluster manifest: nodes + placement + the shard list."""

    def __init__(self, nodes: Mapping[str, str], shards,
                 *, replication: int = 1, vnodes: int = DEFAULT_VNODES,
                 ) -> None:
        if isinstance(shards, Mapping):
            self.shards = sorted(shards)
            pinned = shards
        else:
            self.shards = list(shards)
            pinned = None
        self.placement = PlacementMap(nodes, replication=replication,
                                      vnodes=vnodes, pinned=pinned)

    @property
    def nodes(self) -> dict[str, str]:
        return self.placement.nodes

    def assignment(self) -> dict[str, list[str]]:
        return self.placement.assignment(self.shards)

    def describe(self) -> dict:
        return {"shards": list(self.shards),
                **self.placement.describe()}


def load_manifest(path: str | Path) -> ClusterManifest:
    """Read a cluster manifest file; see the module docstring for the
    schema.  Unknown top-level keys are rejected loudly — a typo'd
    ``"replicaton"`` silently defaulting to 1 is an outage, not a
    convenience."""
    raw = json.loads(Path(path).read_text("utf-8"))
    if not isinstance(raw, dict):
        raise ValueError("cluster manifest must be a JSON object")
    known = {"nodes", "shards", "replication", "vnodes"}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValueError("unknown manifest key(s): %s" % unknown)
    for required in ("nodes", "shards"):
        if required not in raw:
            raise ValueError("cluster manifest missing %r" % required)
    return ClusterManifest(
        raw["nodes"], raw["shards"],
        replication=int(raw.get("replication", 1)),
        vnodes=int(raw.get("vnodes", DEFAULT_VNODES)))
