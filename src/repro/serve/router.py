"""The router tier: one query surface over many shard nodes.

:class:`RouterIndex` composes one :class:`~repro.serve.executor
.ShardExecutor` per shard (usually
:class:`~repro.serve.remote.RemoteShardExecutor` — keep-alive HTTP with
replica failover) behind the same index-shaped query surface the
serving engine already understands, so the whole existing HTTP stack
(coalescer, admission control, stats) fronts a cluster unchanged.
Placement comes from a :class:`~repro.serve.placement.PlacementMap`;
swapping maps (:meth:`RouterIndex.set_placement`) is how rebalance and
decommission happen — in-flight requests drain on the old replica
clients, new requests see the new topology, nothing is dropped.

Query semantics (mirroring :class:`~repro.parallel.sharded
.ShardedEnsemble`, which is what the parity battery compares against):

* ``query`` / ``query_batch`` — one fan-out round, per-row union over
  shards.  Each shard answers at a single epoch (the transport enforces
  it chunk-to-chunk) and the response is tagged with the **minimum**
  epoch observed across shards — the staleness floor.
* ``query_top_k[_batch]`` — the *global* threshold ladder: every rung
  is a cluster-wide fan-out, candidate recovery and the stop rule see
  the union over shards, and the final ranking runs locally over
  candidate signatures fetched from their owning shards
  (``POST /signatures``), preserving the flat index's ordering and
  tie-breaks bit for bit.

**Epoch consistency.**  A ladder is multi-round, so a shard mutating
mid-ladder could leak a mix of pre- and post-mutation candidates into
one response.  The router tracks the epoch each shard reports per
round; on a mismatch the whole ladder restarts from scratch (bounded by
``max_ladder_restarts``), and when the budget is exhausted it raises
:class:`~repro.serve.executor.EpochConsistencyError` (HTTP 503 — an
immediate retry starts a fresh ladder).  Within one fan-out round,
shards are *mutually* independent: each shard's answer is internally
consistent, and the response's ``mutation_epoch`` is the min.

**Failure semantics.**  A shard whose every replica fails raises
:class:`~repro.serve.executor.ShardUnavailableError` (HTTP 503) by
default.  With ``partial=True`` the router instead answers from the
shards it can reach and marks the response ``degraded`` with the
unreachable shard names — explicitly trading completeness for
availability.  The degraded set is maintained per fan-out (a shard
leaves it as soon as it answers again); a response assembled
concurrently with a recovery may briefly over- or under-report it,
which is acceptable for a diagnostic flag.  Degraded shards are
excluded from the response's ``mutation_epoch`` floor — a shard nobody
heard from cannot drag the label of an answer it contributed nothing
to — and surfaced in the ``degraded`` list instead.

**The write path.**  Mutations route by key: :func:`~repro.serve
.placement.owning_shard` picks the one shard a key belongs to (the
same deterministic hash placement lookups use), and the write fans out
to **all** of that shard's replicas, acking only once ``write_quorum``
of them applied it (:class:`~repro.serve.executor.WriteQuorumError` /
HTTP 503 otherwise).  The acked response carries the shard's post-write
mutation epoch — the consistency token readers observe monotonically.
Replicas a write missed (crashed mid-write, below quorum) are
reconciled by :meth:`RouterIndex.repair`: an epoch/key-count compare
across each shard's replicas, then delta shipping (snapshot diff →
``/remove`` + ``/insert``) from the freshest replica to the drifted
ones.  Removals route owner-first, then broadcast-locate: corpora
indexed before hash routing existed may hold keys off their owning
shard.
"""

from __future__ import annotations

import tempfile
import threading
from collections.abc import Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.ensemble import (
    _as_batch,
    _as_lean,
    _ladder_candidates,
    _ladder_candidates_batch,
    _validate_topk_args,
)
from repro.minhash.batch import SignatureBatch
from repro.serve.engine import ServingEngine
from repro.serve.executor import (
    EpochConsistencyError,
    InProcessExecutor,
    ShardExecutor,
    ShardUnavailableError,
)
from repro.serve.placement import ClusterManifest, PlacementMap
from repro.serve.placement import owning_shard as _owning_shard
from repro.serve.remote import (
    NodeFailure,
    RemoteProtocolError,
    RemoteShardExecutor,
)
from repro.serve.server import QueryServer

__all__ = ["RouterIndex", "RouterEngine", "RouterServer"]


class _LadderRestart(Exception):
    """Internal: a shard changed epoch mid-ladder; retry the ladder."""

    def __init__(self, shard: str, before: int, after: int) -> None:
        super().__init__(shard, before, after)
        self.shard = shard
        self.before = before
        self.after = after


class RouterIndex:
    """Index-shaped facade over per-shard executors; module docstring
    has the semantics.  Build one with :meth:`from_manifest` (remote
    cluster) or :meth:`from_executors` (tests, in-process shards)."""

    def __init__(self, executors: Mapping[str, ShardExecutor], *,
                 placement: PlacementMap | None = None,
                 partial: bool = False,
                 max_ladder_restarts: int = 2,
                 write_quorum: int | None = None) -> None:
        if not executors:
            raise ValueError("a router needs at least one shard")
        self.shard_names = list(executors)
        self._executors = dict(executors)
        self.placement = placement
        self.partial = bool(partial)
        self.max_ladder_restarts = int(max_ladder_restarts)
        # None = per-shard majority (the executor's default); an int is
        # clamped to each shard's replica count by the executor.
        self.write_quorum = write_quorum
        self._lock = threading.Lock()
        self._degraded: set[str] = set()
        self._counters = {"fanouts": 0, "ladder_restarts": 0,
                          "partial_responses": 0, "writes": 0,
                          "repair_sweeps": 0}
        # Per-shard (address, epoch, keys) vectors recorded after each
        # sweep: replicas legitimately stay epoch-skewed after a repair
        # (shipping bumps the target further), so "unchanged since the
        # sweep that verified convergence" — not "equal epochs" — is
        # what lets the next sweep skip the snapshot diff.
        self._repair_baselines: dict[str, tuple] = {}
        # Two concurrent fan-outs (coalescer dispatch + a direct single
        # query) must not starve each other's shard slots.
        self._fanout_pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self._executors)),
            thread_name_prefix="lshensemble-router")
        # Cluster facts, filled by connect(): the shards must agree on
        # these or cross-shard results are not comparable at all.
        self.num_perm = 0
        self._seed = 1
        self._kernel = "?"
        self._bbit: int | None = None
        self._generation = 0
        self._keys: dict[str, int] = {}
        self.connect()

    # ------------------------- construction ------------------------- #

    @classmethod
    def from_manifest(cls, manifest: ClusterManifest, *,
                      timeout: float = 10.0, partial: bool = False,
                      max_ladder_restarts: int = 2,
                      write_quorum: int | None = None) -> "RouterIndex":
        return cls.from_placement(manifest.shards, manifest.placement,
                                  timeout=timeout, partial=partial,
                                  max_ladder_restarts=max_ladder_restarts,
                                  write_quorum=write_quorum)

    @classmethod
    def from_placement(cls, shards: Sequence[str],
                       placement: PlacementMap, *,
                       timeout: float = 10.0, partial: bool = False,
                       max_ladder_restarts: int = 2,
                       write_quorum: int | None = None) -> "RouterIndex":
        executors = {
            shard: RemoteShardExecutor(placement.endpoints_for(shard),
                                       shard=shard, timeout=timeout)
            for shard in shards}
        return cls(executors, placement=placement, partial=partial,
                   max_ladder_restarts=max_ladder_restarts,
                   write_quorum=write_quorum)

    @classmethod
    def from_executors(cls, executors: Mapping[str, ShardExecutor],
                       **kwargs) -> "RouterIndex":
        return cls(executors, **kwargs)

    # ------------------- cluster facts / lifecycle ------------------ #

    @staticmethod
    def _shard_info(executor: ShardExecutor) -> dict:
        """One shard's self-description (its ``/healthz`` payload, or
        the equivalent computed locally for in-process executors)."""
        if hasattr(executor, "healthz"):
            return executor.healthz()
        info = ServingEngine(executor.index).describe()
        info["signature_seed"] = ServingEngine(
            executor.index).signature_seed()
        return info

    def connect(self) -> None:
        """Fetch every shard's description, verify the cluster is
        coherent, and prime the per-shard epoch observations.

        ``num_perm`` and the signature seed **must** agree across
        shards — containment estimates between differently-hashed
        signatures are meaningless, so a mismatch is a deployment bug
        worth failing loudly on, not routing around.  A node that
        reports a shard label different from the one placement routed
        to it is serving the wrong data — same treatment.
        """
        infos = self._fanout(
            lambda ex: (self._shard_info(ex), ex.mutation_epoch))
        first_name = next(iter(infos))
        first = infos[first_name]
        for name, info in infos.items():
            label = info.get("shard")
            if label is not None and label != name:
                raise ValueError(
                    "node for shard %r identifies as shard %r — "
                    "placement and deployment disagree" % (name, label))
            for field in ("num_perm", "signature_seed"):
                if info.get(field) != first.get(field):
                    raise ValueError(
                        "shards %r and %r disagree on %s (%r vs %r); "
                        "their results are not comparable"
                        % (first_name, name, field, first.get(field),
                           info.get(field)))
        self.num_perm = int(first["num_perm"])
        self._seed = int(first.get("signature_seed", 1))
        self._kernel = str(first.get("kernel", "?"))
        self._bbit = first.get("bbit")
        with self._lock:
            self._keys = {name: int(info.get("keys", 0))
                          for name, info in infos.items()}
            self._generation = max(int(info.get("generation", 0))
                                   for info in infos.values())

    def refresh(self) -> dict:
        """Re-poll the shards (key counts, generation, epochs) and
        return the per-shard descriptions."""
        infos = self._fanout(
            lambda ex: (self._shard_info(ex), ex.mutation_epoch))
        with self._lock:
            for name, info in infos.items():
                self._keys[name] = int(info.get("keys", 0))
            self._generation = max(
                [self._generation]
                + [int(info.get("generation", 0))
                   for info in infos.values()])
        return infos

    @property
    def signature_seed(self) -> int:
        return self._seed

    @property
    def kernel_name(self) -> str:
        return self._kernel

    @property
    def bbit(self) -> int | None:
        return self._bbit

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    @property
    def mutation_epoch(self) -> int:
        """The staleness floor: minimum last-observed epoch across the
        shards that are actually answering (epochs are per-shard
        independent counters).

        Degraded shards are excluded: in partial mode their answers are
        not in the response at all, so their (frozen, possibly zero)
        last-observed epoch must not drag the floor of answers they
        contributed nothing to — the ``degraded`` marker carries that
        information instead.  If *every* shard is degraded there is no
        reachable floor; fall back to the full set rather than raise on
        a diagnostic read.
        """
        with self._lock:
            degraded = set(self._degraded)
        live = [ex.mutation_epoch
                for name, ex in self._executors.items()
                if name not in degraded]
        if not live:
            live = [ex.mutation_epoch
                    for ex in self._executors.values()]
        return min(live)

    def __len__(self) -> int:
        with self._lock:
            return sum(self._keys.values())

    def degraded_shards(self) -> list[str]:
        with self._lock:
            return sorted(self._degraded)

    def executors(self) -> dict[str, ShardExecutor]:
        return dict(self._executors)

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            degraded = sorted(self._degraded)
            keys = dict(self._keys)
        shard_stats = {name: ex.stats()
                       for name, ex in self._executors.items()}
        requests = sum(s.get("requests", 0)
                       for s in shard_stats.values())
        retries = sum(s.get("retries", 0) for s in shard_stats.values())
        return {
            "shards": shard_stats,
            "keys_per_shard": keys,
            "mutation_epochs": {name: ex.mutation_epoch
                                for name, ex
                                in self._executors.items()},
            "degraded": degraded,
            "partial_mode": self.partial,
            "write_quorum": self.write_quorum,
            "placement": (self.placement.describe()
                          if self.placement is not None else None),
            "shard_requests": requests,
            "shard_retries": retries,
            "retry_rate": (retries / requests) if requests else 0.0,
            **counters,
        }

    # --------------------- topology transitions --------------------- #

    def set_placement(self, placement: PlacementMap) -> list[str]:
        """Atomically adopt a new placement map; returns the shards
        whose replica sets changed.  Requests already in flight finish
        on the replicas they started on (the executors keep the old
        clients alive until those calls return), so a rolling
        rebalance/decommission loses no in-flight queries."""
        changed = []
        for shard, executor in self._executors.items():
            if not isinstance(executor, RemoteShardExecutor):
                raise TypeError(
                    "set_placement needs remote executors; shard %r is "
                    "%s" % (shard, type(executor).__name__))
            endpoints = placement.endpoints_for(shard)
            current = ["%s:%d" % ep for ep in endpoints]
            if current != executor.endpoints:
                executor.replace_clients(endpoints)
                changed.append(shard)
        self.placement = placement
        return changed

    def decommission(self, node: str) -> list[str]:
        """Drain ``node`` out of the topology without downtime; returns
        the shards that moved off it.  The node itself keeps running
        until the operator stops it — the router just stops sending."""
        if self.placement is None:
            raise RuntimeError("this router has no placement map")
        return self.set_placement(self.placement.without_node(node))

    def add_node(self, name: str, address: str) -> list[str]:
        """Admit a (bootstrapped) node; returns the shards now
        (partly) served by it."""
        if self.placement is None:
            raise RuntimeError("this router has no placement map")
        return self.set_placement(self.placement.with_node(name, address))

    def close(self) -> None:
        self._fanout_pool.shutdown(wait=True)
        for executor in self._executors.values():
            executor.close()

    def __enter__(self) -> "RouterIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # --------------------------- fan-out ---------------------------- #

    def _fanout(self, op, tracker: dict | None = None) -> dict:
        """Run ``op(executor) -> (value, epoch)`` on every shard in
        parallel; returns ``{shard: value}`` for the shards that
        answered.

        ``tracker`` carries the per-shard epoch across the rounds of
        one ladder: a shard answering at a different epoch than it did
        earlier in the same ladder raises :class:`_LadderRestart`.
        Unavailable shards raise unless ``partial`` mode is on.
        """
        with self._lock:
            self._counters["fanouts"] += 1
        futures = {name: self._fanout_pool.submit(op, ex)
                   for name, ex in self._executors.items()}
        out: dict = {}
        failures: list[tuple[str, ShardUnavailableError]] = []
        mismatch: _LadderRestart | None = None
        for name, future in futures.items():
            try:
                value, epoch = future.result()
            except ShardUnavailableError as exc:
                failures.append((name, exc))
                continue
            out[name] = value
            if tracker is not None:
                previous = tracker.setdefault(name, epoch)
                if previous != epoch and mismatch is None:
                    # Note it but keep draining futures, so the whole
                    # round's epochs/counters are recorded coherently.
                    mismatch = _LadderRestart(name, previous, epoch)
        with self._lock:
            for name in out:
                self._degraded.discard(name)
            for name, _ in failures:
                self._degraded.add(name)
            if failures and out and self.partial:
                self._counters["partial_responses"] += 1
        if mismatch is not None:
            raise mismatch
        if failures and (not self.partial or not out):
            detail = "; ".join("%s: %s" % (name, exc)
                               for name, exc in failures)
            raise ShardUnavailableError(
                "%d/%d shard(s) unavailable: %s"
                % (len(failures), len(self._executors), detail))
        return out

    @staticmethod
    def _merge_rows(per_shard: dict, n: int) -> list[set]:
        merged: list[set] = [set() for _ in range(n)]
        for shard_rows in per_shard.values():
            for j, hits in enumerate(shard_rows):
                merged[j] |= hits
        return merged

    def _batch_round(self, sb: SignatureBatch, sizes: list[int],
                     threshold, tracker: dict | None) -> list[set]:
        per_shard = self._fanout(
            lambda ex: ex.query_batch_with_epoch(
                sb, sizes=sizes, threshold=threshold),
            tracker=tracker)
        return self._merge_rows(per_shard, len(sb))

    def _normalise(self, batch, sizes):
        sb = _as_batch(batch)
        if sizes is None:
            sizes = [max(1, int(c)) for c in sb.counts()]
        elif len(sizes) != len(sb):
            raise ValueError("got %d sizes for %d signatures"
                             % (len(sizes), len(sb)))
        return sb, [int(s) for s in sizes]

    # ------------------------- query paths -------------------------- #

    def query_batch(self, batch, sizes: Sequence[int] | None = None,
                    threshold: float | None = None) -> list[set]:
        sb, sizes = self._normalise(batch, sizes)
        if len(sb) == 0:
            return []
        return self._batch_round(sb, sizes, threshold, tracker=None)

    def query(self, signature, size: int | None = None,
              threshold: float | None = None) -> set:
        lean = _as_lean(signature)
        q = int(size) if size is not None else max(1, lean.count())
        return self.query_batch([lean], sizes=[q],
                                threshold=threshold)[0]

    def signatures_for(self, keys) -> tuple[dict, dict]:
        pool, sizes = self._pool_fetch(list(keys), tracker=None)
        return pool, sizes

    def _pool_fetch(self, keys: list, tracker: dict | None,
                    ) -> tuple[dict, dict]:
        """Candidate signatures/sizes, unioned from their owning
        shards; participates in the ladder's epoch tracking."""
        if not keys:
            return {}, {}
        # Deterministic wire order (diagnostics); shards return only
        # the keys they hold, the union is disjoint by construction.
        keys = sorted(keys, key=str)

        def op(executor):
            if hasattr(executor, "signatures_with_epoch"):
                pool, sizes, epoch = executor.signatures_with_epoch(keys)
                return (pool, sizes), epoch
            pool, sizes = executor.signatures_for(keys)
            return (pool, sizes), executor.mutation_epoch

        per_shard = self._fanout(op, tracker=tracker)
        pool: dict = {}
        sizes: dict = {}
        for shard_pool, shard_sizes in per_shard.values():
            pool.update(shard_pool)
            sizes.update(shard_sizes)
        return pool, sizes

    def _rank(self, query_signature, query_size: int, candidates,
              pool: dict, sizes: dict, k: int) -> list:
        """Rank one row's candidates exactly as the flat index would.

        A candidate the pool fetch could not resolve means the cluster
        changed between the rung that surfaced it and the fetch — in
        strict mode that is an epoch inconsistency (restart the
        ladder); in partial mode its shard is down and the key is
        dropped with the rest of that shard's answers.
        """
        from repro.core.estimation import rank_candidates

        missing = [key for key in candidates if key not in pool]
        if missing and not self.partial:
            raise _LadderRestart(repr(missing[0]), -1, -1)
        row_pool = {key: pool[key] for key in candidates
                    if key in pool}
        row_sizes = {key: sizes[key] for key in row_pool}
        return rank_candidates(query_signature, row_pool,
                               query_size=query_size,
                               sizes=row_sizes)[:k]

    def query_top_k(self, signature, k: int, size: int | None = None,
                    min_threshold: float = 0.05) -> list:
        _validate_topk_args(k, min_threshold)
        lean = _as_lean(signature)
        q = int(size) if size is not None else max(1, lean.count())
        restart: _LadderRestart | None = None
        for _ in range(self.max_ladder_restarts + 1):
            tracker: dict = {}
            try:
                candidates = _ladder_candidates(
                    lambda threshold: self._batch_round(
                        _as_batch([lean]), [q], threshold, tracker)[0],
                    k, min_threshold)
                pool, sizes = self._pool_fetch(list(candidates), tracker)
                return self._rank(lean, q, candidates, pool, sizes, k)
            except _LadderRestart as exc:
                restart = exc
                with self._lock:
                    self._counters["ladder_restarts"] += 1
        raise EpochConsistencyError(
            "top-k ladder restarted %d times without observing a "
            "stable cluster (last offender: shard %s)"
            % (self.max_ladder_restarts, restart.shard))

    def query_top_k_batch(self, batch, k: int,
                          sizes: Sequence[int] | None = None,
                          min_threshold: float = 0.05) -> list[list]:
        _validate_topk_args(k, min_threshold)
        sb, qs = self._normalise(batch, sizes)
        n = len(sb)
        if n == 0:
            return []
        restart: _LadderRestart | None = None
        for _ in range(self.max_ladder_restarts + 1):
            tracker = {}
            try:
                return self._top_k_batch_once(sb, n, k, qs,
                                              min_threshold, tracker)
            except _LadderRestart as exc:
                restart = exc
                with self._lock:
                    self._counters["ladder_restarts"] += 1
        raise EpochConsistencyError(
            "top-k ladder restarted %d times without observing a "
            "stable cluster (last offender: shard %s)"
            % (self.max_ladder_restarts, restart.shard))

    def _top_k_batch_once(self, sb, n: int, k: int, qs: list[int],
                          min_threshold: float, tracker: dict,
                          ) -> list[list]:
        def rung(rows, threshold):
            sub = SignatureBatch(None, sb.take(rows), seed=sb.seed)
            return self._batch_round(sub, [qs[j] for j in rows],
                                     threshold, tracker)

        candidates = _ladder_candidates_batch(rung, n, k, min_threshold)
        all_keys = {key for per_row in candidates for key in per_row}
        pool, sizes = self._pool_fetch(list(all_keys), tracker)
        return [self._rank(sb[j], qs[j], candidates[j], pool, sizes, k)
                for j in range(n)]

    # -------------------------- write path -------------------------- #

    def owning_shard(self, key) -> str:
        """The shard ``key``'s mutations route to (deterministic hash
        placement; see :func:`repro.serve.placement.owning_shard`)."""
        return _owning_shard(key, self.shard_names)

    def insert_entries(self, entries) -> tuple[list[bool], int]:
        """Route ``(key, signature, size)`` inserts to their owning
        shards, each write fanning to all replicas under the configured
        quorum.  Returns per-entry applied flags (``False`` = already
        present, the idempotent ack) and the highest post-write epoch —
        the consistency token the caller hands back to its client.
        """
        entries = [(key, _as_lean(signature), int(size))
                   for key, signature, size in entries]
        groups: dict[str, list[int]] = {}
        for j, (key, _, _) in enumerate(entries):
            groups.setdefault(self.owning_shard(key), []).append(j)
        applied = [False] * len(entries)
        epochs: list[int] = []
        for shard, rows in sorted(groups.items()):
            flags, epoch = self._executors[shard].insert_entries(
                [entries[j] for j in rows], quorum=self.write_quorum)
            for j, flag in zip(rows, flags):
                applied[j] = bool(flag)
            epochs.append(int(epoch))
            fresh = sum(1 for flag in flags if flag)
            if fresh:
                with self._lock:
                    self._keys[shard] = self._keys.get(shard, 0) + fresh
        with self._lock:
            self._counters["writes"] += 1
        return applied, max(epochs)

    def insert(self, key, signature, size: int) -> int:
        """Single-key insert mirroring the flat index surface (raises
        ``ValueError`` on a duplicate); returns the new epoch."""
        applied, epoch = self.insert_entries([(key, signature, size)])
        if not applied[0]:
            raise ValueError("key %r is already in the index" % (key,))
        return epoch

    def remove_keys(self, keys) -> tuple[list[bool], int]:
        """Remove keys: owning shard first, then a broadcast-locate
        pass over the other shards for any still-unremoved key (corpora
        split before hash routing existed hold keys off their owner).
        Per-key flags report whether *any* shard dropped the key."""
        keys = list(keys)
        removed = [False] * len(keys)
        epochs: list[int] = []

        def sweep(shard: str, rows: list[int]) -> None:
            flags, epoch = self._executors[shard].remove_keys(
                [keys[j] for j in rows], quorum=self.write_quorum)
            hit = [j for j, flag in zip(rows, flags) if flag]
            for j in hit:
                removed[j] = True
            epochs.append(int(epoch))
            if hit:
                with self._lock:
                    self._keys[shard] = max(
                        0, self._keys.get(shard, 0) - len(hit))

        groups: dict[str, list[int]] = {}
        for j, key in enumerate(keys):
            groups.setdefault(self.owning_shard(key), []).append(j)
        for shard, rows in sorted(groups.items()):
            sweep(shard, rows)
        if not all(removed):
            for shard in sorted(self.shard_names):
                rows = [j for j in range(len(keys))
                        if not removed[j]
                        and self.owning_shard(keys[j]) != shard]
                if rows:
                    sweep(shard, rows)
        with self._lock:
            self._counters["writes"] += 1
        return removed, max(epochs)

    def remove(self, key) -> None:
        """Single-key removal mirroring the flat index surface (raises
        ``KeyError`` when no shard holds the key)."""
        removed, _ = self.remove_keys([key])
        if not removed[0]:
            raise KeyError(key)

    # ------------------------- anti-entropy ------------------------- #

    def _probe_replicas(self, clients) -> tuple[dict, list[str]]:
        infos: dict = {}
        unreachable: list[str] = []
        for client in clients:
            try:
                infos[client.address] = client.healthz()
            except (NodeFailure, RemoteProtocolError) as exc:
                unreachable.append("%s: %s" % (client.address, exc))
        return infos, unreachable

    @staticmethod
    def _replica_vector(infos: dict) -> tuple:
        return tuple(sorted(
            (addr, int(info.get("mutation_epoch", 0)),
             int(info.get("keys", 0)))
            for addr, info in infos.items()))

    def repair(self) -> dict:
        """One anti-entropy sweep over every remote shard's replicas.

        Per shard: probe each replica's ``/healthz`` (epoch + key
        count).  If the vector is uniform, single-replica, or unchanged
        since the last sweep that verified convergence, the shard is
        healthy.  Otherwise pick the freshest replica (max epoch, then
        key count) as the source, snapshot-diff each other replica
        against it, and ship the delta over the replica's own
        ``/remove`` + ``/insert`` endpoints — idempotent, so a sweep
        racing live writes at worst re-ships what the next sweep
        confirms converged.  Returns a per-shard report plus aggregate
        shipping counts.
        """
        report: dict = {"shards": {}, "repaired_replicas": 0,
                        "shipped_inserts": 0, "shipped_removes": 0}
        for shard in sorted(self.shard_names):
            entry = self._repair_shard(shard, self._executors[shard])
            report["shards"][shard] = entry
            report["repaired_replicas"] += len(entry.get("repaired", []))
            shipped = entry.get("shipped", {})
            report["shipped_inserts"] += shipped.get("inserts", 0)
            report["shipped_removes"] += shipped.get("removes", 0)
        with self._lock:
            self._counters["repair_sweeps"] += 1
        return report

    def _repair_shard(self, shard: str, executor) -> dict:
        if not isinstance(executor, RemoteShardExecutor):
            return {"status": "local"}
        clients = executor.replica_clients()
        infos, unreachable = self._probe_replicas(clients)
        if not infos:
            return {"status": "unreachable",
                    "unreachable": unreachable}
        epochs = {addr: int(info.get("mutation_epoch", 0))
                  for addr, info in infos.items()}
        key_counts = {addr: int(info.get("keys", 0))
                      for addr, info in infos.items()}
        vector = self._replica_vector(infos)
        uniform = (len(set(epochs.values())) == 1
                   and len(set(key_counts.values())) == 1)
        with self._lock:
            baseline = self._repair_baselines.get(shard)
        if len(infos) == 1 or uniform or vector == baseline:
            with self._lock:
                self._repair_baselines[shard] = vector
            return {"status": "healthy", "epochs": epochs,
                    "unreachable": unreachable}

        source_addr = max(
            infos, key=lambda addr: (epochs[addr], key_counts[addr],
                                     addr))
        source_client = next(client for client in clients
                             if client.address == source_addr)
        repaired: list[str] = []
        shipped = {"inserts": 0, "removes": 0}
        from repro.persistence import load_ensemble

        with tempfile.TemporaryDirectory(prefix="lshe-repair-") as tmp:
            tmp_path = Path(tmp)
            source = load_ensemble(
                source_client.snapshot(tmp_path / "source"))
            source_keys = set(source.keys())
            for idx, client in enumerate(clients):
                addr = client.address
                if addr == source_addr or addr not in infos:
                    continue
                replica = load_ensemble(
                    client.snapshot(tmp_path / ("replica_%d" % idx)))
                replica_keys = set(replica.keys())
                changed = [
                    key for key in replica_keys & source_keys
                    if replica.size_of(key) != source.size_of(key)
                    or not np.array_equal(
                        replica.get_signature(key).hashvalues,
                        source.get_signature(key).hashvalues)]
                removes = sorted(
                    list(replica_keys - source_keys) + changed, key=str)
                inserts = sorted(
                    list(source_keys - replica_keys) + changed, key=str)
                if not removes and not inserts:
                    continue
                if removes:
                    client.remove(removes)
                if inserts:
                    client.insert([(key, source.get_signature(key),
                                    source.size_of(key))
                                   for key in inserts])
                repaired.append(addr)
                shipped["inserts"] += len(inserts)
                shipped["removes"] += len(removes)

        # Re-probe: the post-repair vector is the convergence baseline
        # the next sweep compares against (and the shipping itself
        # bumped the repaired replicas' epochs).
        infos, post_unreachable = self._probe_replicas(clients)
        with self._lock:
            self._repair_baselines[shard] = self._replica_vector(infos)
        return {"status": "repaired" if repaired else "healthy",
                "source": source_addr,
                "repaired": repaired,
                "shipped": shipped,
                "epochs": {addr: int(info.get("mutation_epoch", 0))
                           for addr, info in infos.items()},
                "unreachable": unreachable + post_unreachable}


class _RouterExecutor(InProcessExecutor):
    """The router behind the standard executor interface, so the
    serving engine dispatches to it like any other backend."""

    kind = "router"

    # close() stays the no-op default deliberately: the router index
    # is caller-owned (the CLI / test that built it also closes it), so
    # a server shutting down must not tear down a topology the caller
    # may keep querying in-process.

    def signatures_for(self, keys):
        return self._index.signatures_for(keys)

    # Writes go through the router's own placement-routed, quorum-acked
    # path (the index-backed default probes ``key in index``, which a
    # router does not answer locally).

    def insert_entries(self, entries, quorum=None):
        return self._index.insert_entries(entries)

    def remove_keys(self, keys, quorum=None):
        return self._index.remove_keys(keys)


class RouterEngine(ServingEngine):
    """Serving-engine adapter for a :class:`RouterIndex`: introspection
    comes from the cluster facts gathered at connect time (refreshed on
    ``/stats``), not from walking a local index."""

    def __init__(self, router: RouterIndex) -> None:
        super().__init__(router, executor=_RouterExecutor(router))
        self.router = router

    @property
    def executor_kind(self) -> str:
        return "router"

    @property
    def num_perm(self) -> int:
        return self.router.num_perm

    @property
    def kernel_name(self) -> str:
        return self.router.kernel_name

    @property
    def bbit(self) -> int | None:
        return self.router.bbit

    def signature_seed(self) -> int:
        return self.router.signature_seed

    def describe(self) -> dict:
        return {
            "status": "degraded" if self.router.degraded_shards()
            else "ok",
            "index": "RouterIndex",
            "keys": len(self.router),
            "num_perm": self.num_perm,
            "generation": self.generation,
            "mutation_epoch": self.mutation_epoch,
            "executor": "router",
            "kernel": self.kernel_name,
            "bbit": self.bbit,
            "signature_seed": self.signature_seed(),
            "shards": list(self.router.shard_names),
            "degraded": self.router.degraded_shards(),
        }

    def stats(self) -> dict:
        try:
            self.router.refresh()
        except ShardUnavailableError:
            pass  # stats must stay observable while shards are down
        return {
            "index": "RouterIndex",
            "keys": len(self.router),
            "generation": self.generation,
            "mutation_epoch": self.mutation_epoch,
            "executor": "router",
            "kernel": self.kernel_name,
            "bbit": self.bbit,
            "router": self.router.stats(),
        }

    def snapshot_bytes(self) -> bytes | None:
        return None  # a router has no single index to snapshot


class RouterServer(QueryServer):
    """:class:`~repro.serve.server.QueryServer` over a
    :class:`RouterIndex`.

    The result cache defaults to **off**: the router only observes
    remote epochs when a fan-out happens to report them, so an
    epoch-keyed cache could serve entries at a stale label after a
    shard mutates.  Operators who accept bounded staleness can pass a
    ``cache_size`` explicitly.
    """

    def __init__(self, router: RouterIndex, host: str = "127.0.0.1",
                 port: int = 0, *, max_batch: int = 64,
                 window_ms: float = 2.0, cache_size: int = 0,
                 max_pending: int = 1024) -> None:
        super().__init__(router, host, port, max_batch=max_batch,
                         window_ms=window_ms, cache_size=cache_size,
                         max_pending=max_pending,
                         engine=RouterEngine(router))

    def _finalise_payload(self, payload: dict) -> dict:
        # Re-read the staleness floor *after* dispatch: the fan-out
        # just observed every shard's epoch, so the label reflects the
        # answers in this response, not the previous fan-out's.
        payload["mutation_epoch"] = self.engine.mutation_epoch
        degraded = self.engine.index.degraded_shards()
        if degraded:
            payload["degraded"] = degraded
        return payload
