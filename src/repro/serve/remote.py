"""Remote shard transport: keep-alive HTTP clients for shard nodes.

This module is the **only** place in :mod:`repro.serve` that talks raw
HTTP/sockets (lint rule RL007 enforces it): the serving engine and the
router see shards exclusively through the
:class:`~repro.serve.executor.ShardExecutor` interface, and this module
supplies the remote implementation of it.

Two layers:

* :class:`ShardNodeClient` — a pool of persistent keep-alive
  ``http.client`` connections to **one** shard-node server, speaking
  the node's public JSON endpoints (``/query``, ``/query_top_k``,
  ``/signatures``, ``/insert``, ``/remove``, ``/healthz``, ``/stats``)
  plus the binary ``/snapshot`` stream.  Every query response carries
  the node's ``mutation_epoch``; the client hands it back alongside the
  results so callers can reason about staleness per call, not per
  property read.

* :class:`RemoteShardExecutor` — one *shard* behind N replica nodes.
  Reads go to a sticky preferred replica; a timeout, connection error,
  node 5xx, or malformed response fails the attempt over to the next
  replica (the preference advances, so later calls do not re-pay a
  dead primary's timeout).  Only when every replica fails does the call
  raise :class:`~repro.serve.executor.ShardUnavailableError`.  Writes
  are different: they **broadcast** to every replica and ack only when
  a quorum applied them
  (:class:`~repro.serve.executor.WriteQuorumError` otherwise) — a
  replica that missed a write is repaired by the router's anti-entropy
  sweep, not read around forever.  Counters
  (``requests``/``retries``/``failovers``/``unavailable`` plus the
  write-path ``writes``/``write_replica_failures``/
  ``write_quorum_failures``) feed the router's ``/stats`` and the
  benchmark retry-rate metrics.

Failure semantics worth pinning: an HTTP **400** from a node is *not*
retried — it is deterministic (a protocol bug), and replaying it on a
replica would just fail again; it surfaces as
:class:`RemoteProtocolError`.  A **503** (node overloaded) *is* retried
on a replica: the whole point of replication is routing around a busy
or dead node.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.minhash.lean import LeanMinHash
from repro.serve.executor import (
    ShardExecutor,
    ShardUnavailableError,
    WriteQuorumError,
)

__all__ = ["ShardNodeClient", "RemoteShardExecutor",
           "RemoteProtocolError", "NodeFailure", "restore_key"]

#: Server-side bound on queries per HTTP request (mirrors
#: repro.serve.server.MAX_QUERIES_PER_REQUEST); larger batches are
#: split into sequential chunks on one keep-alive connection.
MAX_QUERIES_PER_CHUNK = 256

#: Node statuses that fail over to a replica (transient by contract).
RETRYABLE_STATUSES = frozenset({500, 502, 503, 504})


class RemoteProtocolError(RuntimeError):
    """A node answered with a deterministic error (4xx) or an
    unintelligible body; retrying on a replica cannot help."""


class NodeFailure(RuntimeError):
    """One attempt against one node failed transiently (connection
    refused/reset, timeout, node 5xx); the caller may fail over."""


def restore_key(obj):
    """Undo JSON's tuple->list coercion on result keys.

    Mirrors the persistence layer's key round-trip rule ("tuple keys
    are restored as tuples"): lists become tuples recursively, every
    other JSON scalar passes through — so keys coming off the wire are
    hashable and compare equal to the in-process originals.
    """
    if isinstance(obj, list):
        return tuple(restore_key(item) for item in obj)
    return obj


def _json_key(key):
    """The JSON form of a key (tuples serialise as lists)."""
    if isinstance(key, tuple):
        return [_json_key(item) for item in key]
    return key


class ShardNodeClient:
    """Keep-alive HTTP client for one shard-node server.

    Thread-safe: connections are checked out of a small stack per
    request, and a fresh connection is opened when the stack is empty —
    concurrent fan-out threads never share a socket.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 10.0, max_idle: int = 4) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._max_idle = int(max_idle)
        self._idle: list[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self._closed = False

    @property
    def address(self) -> str:
        return "%s:%d" % (self.host, self.port)

    # ------------------------- connections -------------------------- #

    def _checkout(self) -> http.client.HTTPConnection:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _checkin(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self._max_idle:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    # --------------------------- requests --------------------------- #

    def _request(self, method: str, path: str,
                 body: bytes | None = None) -> tuple[int, bytes]:
        """One round trip; transient transport problems raise
        :class:`NodeFailure` (a dropped keep-alive connection is
        retried once on a fresh socket before giving up)."""
        conn = self._checkout()
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            try:
                conn.request(method, path, body, headers)
                response = conn.getresponse()
                payload = response.read()
            except (http.client.HTTPException, OSError,
                    socket.timeout) as exc:
                conn.close()
                if attempt == 1:
                    raise NodeFailure(
                        "%s %s on %s failed: %s"
                        % (method, path, self.address, exc)) from exc
                # The node may have legitimately closed an idle
                # keep-alive connection; one fresh-socket retry.
                conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout)
                continue
            self._checkin(conn)
            return response.status, payload
        raise AssertionError("unreachable")

    def _json_call(self, method: str, path: str,
                   payload: dict | None = None) -> dict:
        body = (json.dumps(payload, separators=(",", ":")).encode("utf-8")
                if payload is not None else None)
        status, raw = self._request(method, path, body)
        if status in RETRYABLE_STATUSES:
            raise NodeFailure("%s answered %d for %s"
                              % (self.address, status, path))
        if status != 200:
            raise RemoteProtocolError(
                "%s answered %d for %s: %s"
                % (self.address, status, path, raw[:200].decode(
                    "utf-8", "replace")))
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise NodeFailure("unparseable response from %s %s: %s"
                              % (self.address, path, exc)) from exc
        if not isinstance(data, dict):
            raise NodeFailure("non-object response from %s %s"
                              % (self.address, path))
        return data

    # ----------------------- node endpoints ------------------------- #

    def healthz(self) -> dict:
        return self._json_call("GET", "/healthz")

    def stats(self) -> dict:
        return self._json_call("GET", "/stats")

    def query(self, items: list[dict],
              threshold: float | None) -> tuple[list[set], int]:
        """POST ``/query``; returns per-item hit sets + the epoch."""
        payload: dict = {"queries": items}
        if threshold is not None:
            payload["threshold"] = threshold
        data = self._json_call("POST", "/query", payload)
        results = [{restore_key(key) for key in found}
                   for found in data["results"]]
        return results, int(data["mutation_epoch"])

    def query_top_k(self, items: list[dict], k: int,
                    min_threshold: float) -> tuple[list[list], int]:
        """POST ``/query_top_k``; per-item ``[(key, score), ...]``."""
        data = self._json_call("POST", "/query_top_k", {
            "queries": items, "k": int(k),
            "min_threshold": float(min_threshold)})
        results = [[(restore_key(key), float(score))
                    for key, score in ranked]
                   for ranked in data["results"]]
        return results, int(data["mutation_epoch"])

    def signatures(self, keys: Sequence) -> tuple[dict, dict, int]:
        """POST ``/signatures``; the candidate pool this node holds."""
        data = self._json_call("POST", "/signatures", {
            "keys": [_json_key(key) for key in keys]})
        pool: dict = {}
        sizes: dict = {}
        for key_json, seed, size, values in data["found"]:
            key = restore_key(key_json)
            pool[key] = LeanMinHash(
                seed=int(seed),
                hashvalues=np.asarray(values, dtype=np.uint64))
            sizes[key] = int(size)
        return pool, sizes, int(data["mutation_epoch"])

    def insert(self, entries: Sequence[tuple]) -> tuple[list[bool], int]:
        """POST ``/insert``: apply ``(key, lean, size)`` entries.

        Idempotent on the node — an already-present key reports
        ``False`` in the applied-flags list — so retries and repair
        shipping are safe.  Returns the flags plus the node's
        post-write mutation epoch.
        """
        items = [{"key": _json_key(key),
                  "signature": [int(v) for v in lean.hashvalues],
                  "seed": int(lean.seed), "size": int(size)}
                 for key, lean, size in entries]
        # Chunk under the server's per-request entry bound so a large
        # repair shipment is a sequence of valid requests, not a 400.
        applied: list[bool] = []
        epoch = 0
        for start in range(0, len(items), MAX_QUERIES_PER_CHUNK):
            data = self._json_call("POST", "/insert", {
                "entries": items[start:start + MAX_QUERIES_PER_CHUNK]})
            applied.extend(bool(flag) for flag in data["applied"])
            epoch = int(data["mutation_epoch"])
        return applied, epoch

    def remove(self, keys: Sequence) -> tuple[list[bool], int]:
        """POST ``/remove``: drop keys; absent ones report ``False``."""
        data = self._json_call("POST", "/remove", {
            "keys": [_json_key(key) for key in keys]})
        return ([bool(flag) for flag in data["removed"]],
                int(data["mutation_epoch"]))

    def snapshot(self, dest: str | Path) -> Path:
        """GET ``/snapshot``: download the node's packed index state
        and unpack it under ``dest``; returns the loadable path."""
        from repro.persistence import unpack_snapshot

        status, raw = self._request("GET", "/snapshot")
        if status in RETRYABLE_STATUSES:
            raise NodeFailure("%s answered %d for /snapshot"
                              % (self.address, status))
        if status != 200:
            raise RemoteProtocolError("%s answered %d for /snapshot"
                                      % (self.address, status))
        return unpack_snapshot(raw, dest)


class RemoteShardExecutor(ShardExecutor):
    """One shard served by N replica nodes, behind the executor
    interface; see the module docstring for the failover contract.

    Parameters
    ----------
    endpoints:
        ``[(host, port), ...]`` replicas serving *the same shard data*.
    shard:
        Shard label (stats/diagnostics; verified against the nodes'
        ``/healthz`` by the router when it builds the topology).
    timeout:
        Per-request socket timeout — the per-shard latency bound; a
        node that blows it is failed over, not waited on.
    """

    kind = "remote"

    def __init__(self, endpoints: Sequence[tuple[str, int]], *,
                 shard: str = "?", timeout: float = 10.0) -> None:
        if not endpoints:
            raise ValueError("a shard needs at least one endpoint")
        self.shard = shard
        self._clients = [ShardNodeClient(host, port, timeout=timeout)
                         for host, port in endpoints]
        self._preferred = 0
        self._lock = threading.Lock()
        self._last_epoch = 0
        self._high_epoch = 0
        self.counters = {"requests": 0, "retries": 0, "failovers": 0,
                         "unavailable": 0, "writes": 0,
                         "write_replica_failures": 0,
                         "write_quorum_failures": 0}

    # ------------------------ replica cycling ------------------------ #

    @property
    def endpoints(self) -> list[str]:
        return [client.address for client in self._clients]

    def replace_clients(self, endpoints: Sequence[tuple[str, int]],
                        ) -> None:
        """Swap the replica set (rebalance/decommission).  In-flight
        requests hold references to the old clients and complete on
        them; only *new* calls see the new topology.  The old clients'
        idle sockets are closed."""
        if not endpoints:
            raise ValueError("a shard needs at least one endpoint")
        new = [ShardNodeClient(host, port,
                               timeout=self._clients[0].timeout)
               for host, port in endpoints]
        with self._lock:
            old, self._clients = self._clients, new
            self._preferred = 0
        for client in old:
            client.close()

    def _attempt_order(self) -> list[ShardNodeClient]:
        with self._lock:
            clients = list(self._clients)
            start = self._preferred % len(clients)
        return clients[start:] + clients[:start]

    def _advance_preferred(self, failed: ShardNodeClient) -> None:
        with self._lock:
            clients = self._clients
            if failed in clients \
                    and clients[self._preferred % len(clients)] is failed:
                self._preferred = (self._preferred + 1) % len(clients)
                self.counters["failovers"] += 1

    def _call(self, op):
        """Run ``op(client)`` against the replicas until one answers."""
        self.counters["requests"] += 1
        errors = []
        for i, client in enumerate(self._attempt_order()):
            try:
                return op(client)
            except NodeFailure as exc:
                errors.append(str(exc))
                self._advance_preferred(client)
                if i + 1 < len(self._clients):
                    self.counters["retries"] += 1
        self.counters["unavailable"] += 1
        raise ShardUnavailableError(
            "shard %r: all %d replica(s) failed: %s"
            % (self.shard, len(self._clients), "; ".join(errors)))

    def replica_clients(self) -> list[ShardNodeClient]:
        """The current replica set (the anti-entropy sweep probes and
        repairs replicas individually, bypassing failover)."""
        with self._lock:
            return list(self._clients)

    def _note_epoch(self, epoch: int) -> int:
        """Record an epoch seen on the wire; returns it **raw**.

        Consistency machinery (the router's ladder tracker) compares
        raw wire epochs — a failover to a stale replica must look like
        a mismatch, never be papered over.  Separately,
        :attr:`mutation_epoch` tracks the monotone high-water mark,
        which is what response staleness labels use (a floor may not
        move backward when a read fails over).
        """
        epoch = int(epoch)
        with self._lock:
            self._last_epoch = epoch
            if epoch > self._high_epoch:
                self._high_epoch = epoch
        return epoch

    # ------------------------- query paths -------------------------- #

    @staticmethod
    def _items(matrix, seed: int, sizes: Sequence[int]) -> list[dict]:
        return [{"signature": [int(v) for v in row], "seed": int(seed),
                 "size": int(size)}
                for row, size in zip(matrix, sizes)]

    def _normalise(self, batch, sizes):
        from repro.core.ensemble import _as_batch

        sb = _as_batch(batch)
        if sizes is None:
            sizes = [max(1, int(c)) for c in sb.counts()]
        elif len(sizes) != len(sb):
            raise ValueError("got %d sizes for %d signatures"
                             % (len(sizes), len(sb)))
        return sb, [int(s) for s in sizes]

    def _chunked(self, items: list[dict], call) -> tuple[list, int]:
        """Split one logical batch into wire-sized requests.

        All chunks must come back at one epoch, or the batch would mix
        states row by row; a mid-batch mutation surfaces as
        :class:`NodeFailure` so the replica-failover (and the router's
        restart machinery above it) get a consistent second attempt.
        """
        out: list = []
        epoch: int | None = None
        for start in range(0, len(items), MAX_QUERIES_PER_CHUNK):
            results, chunk_epoch = call(
                items[start:start + MAX_QUERIES_PER_CHUNK])
            if epoch is not None and chunk_epoch != epoch:
                raise NodeFailure(
                    "shard %r mutated mid-batch (epoch %d -> %d)"
                    % (self.shard, epoch, chunk_epoch))
            epoch = chunk_epoch
            out.extend(results)
        return out, int(epoch if epoch is not None else 0)

    def query_batch_with_epoch(self, batch, sizes=None, threshold=None):
        sb, sizes = self._normalise(batch, sizes)
        if len(sb) == 0:
            return [], self.mutation_epoch
        items = self._items(sb.matrix, sb.seed, sizes)

        def op(client):
            return self._chunked(
                items, lambda chunk: client.query(chunk, threshold))

        results, epoch = self._call(op)
        return results, self._note_epoch(epoch)

    def query_batch(self, batch, sizes=None, threshold=None):
        return self.query_batch_with_epoch(batch, sizes=sizes,
                                           threshold=threshold)[0]

    def query_top_k_batch(self, batch, k, sizes=None, min_threshold=0.05):
        sb, sizes = self._normalise(batch, sizes)
        if len(sb) == 0:
            return []
        items = self._items(sb.matrix, sb.seed, sizes)

        def op(client):
            return self._chunked(
                items,
                lambda chunk: client.query_top_k(chunk, k, min_threshold))

        results, epoch = self._call(op)
        self._note_epoch(epoch)
        return results

    def query(self, signature, size=None, threshold=None):
        from repro.core.ensemble import _as_lean

        lean = _as_lean(signature)
        sizes = [int(size) if size is not None
                 else max(1, lean.count())]
        found, _ = self.query_batch_with_epoch(
            [lean], sizes=sizes, threshold=threshold)
        return found[0]

    def query_top_k(self, signature, k, size=None, min_threshold=0.05):
        from repro.core.ensemble import _as_lean

        lean = _as_lean(signature)
        sizes = [int(size) if size is not None
                 else max(1, lean.count())]
        return self.query_top_k_batch([lean], k, sizes=sizes,
                                      min_threshold=min_threshold)[0]

    def signatures_for(self, keys):
        pool, sizes, epoch = self.signatures_with_epoch(keys)
        return pool, sizes

    def signatures_with_epoch(self, keys) -> tuple[dict, dict, int]:
        keys = list(keys)
        if not keys:
            return {}, {}, self.mutation_epoch
        pool, sizes, epoch = self._call(
            lambda client: client.signatures(keys))
        return pool, sizes, self._note_epoch(epoch)

    # -------------------------- write path -------------------------- #

    def _resolve_quorum(self, quorum: int | None, replicas: int) -> int:
        """Required ack count: an explicit quorum (clamped into
        ``[1, replicas]``), or a majority by default."""
        if quorum is None:
            return replicas // 2 + 1
        return max(1, min(int(quorum), replicas))

    def _broadcast(self, what: str, op, count: int,
                   quorum: int | None) -> tuple[list[bool], int]:
        """Fan a mutation to **every** replica; ack on quorum.

        Per-replica applied flags are OR-merged (replicas at different
        drift states legitimately disagree on whether a key was new),
        and the returned epoch is the highest any acking replica
        reported — the consistency token the caller hands back.  A
        replica that failed transiently is simply a missed ack: the
        anti-entropy sweep converges it later.  A deterministic 4xx
        (:class:`RemoteProtocolError`) is *not* survivable by quorum —
        it means the request itself is wrong and every replica would
        refuse it.
        """
        clients = self.replica_clients()
        want = self._resolve_quorum(quorum, len(clients))
        merged = [False] * count
        epochs: list[int] = []
        errors: list[str] = []
        with self._lock:
            self.counters["writes"] += 1
        for client in clients:
            try:
                flags, epoch = op(client)
            except NodeFailure as exc:
                errors.append(str(exc))
                with self._lock:
                    self.counters["write_replica_failures"] += 1
                continue
            if len(flags) == count:
                merged = [a or b for a, b in zip(merged, flags)]
            epochs.append(int(epoch))
        if len(epochs) < want:
            with self._lock:
                self.counters["write_quorum_failures"] += 1
            raise WriteQuorumError(
                "shard %r %s: %d/%d replica(s) acked, quorum is %d: %s"
                % (self.shard, what, len(epochs), len(clients), want,
                   "; ".join(errors) or "no errors recorded"))
        return merged, self._note_epoch(max(epochs))

    def insert_entries(self, entries, quorum=None):
        entries = list(entries)
        if not entries:
            return [], self.mutation_epoch
        return self._broadcast(
            "insert", lambda client: client.insert(entries),
            len(entries), quorum)

    def remove_keys(self, keys, quorum=None):
        keys = list(keys)
        if not keys:
            return [], self.mutation_epoch
        return self._broadcast(
            "remove", lambda client: client.remove(keys),
            len(keys), quorum)

    # --------------------------- plumbing --------------------------- #

    @property
    def mutation_epoch(self) -> int:
        with self._lock:
            return self._high_epoch

    def observe_epoch(self) -> int:
        """Refresh the epoch from the preferred replica's ``/healthz``
        (used at router startup, before any query has reported one)."""
        data = self._call(lambda client: client.healthz())
        return self._note_epoch(int(data["mutation_epoch"]))

    def healthz(self) -> dict:
        return self._call(lambda client: client.healthz())

    def node_stats(self) -> dict:
        return self._call(lambda client: client.stats())

    def describe(self) -> dict:
        return {"executor": self.kind, "shard": self.shard,
                "endpoints": self.endpoints}

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self.counters)
        return {"executor": self.kind, "shard": self.shard,
                "endpoints": self.endpoints,
                "last_epoch": self.mutation_epoch, **counters}

    def close(self) -> None:
        for client in self._clients:
            client.close()
