"""Cluster orchestration: the bootstrap → admit → repair loop, named.

The lifecycle tests (and any operator) previously drove node admission
by hand: start the node (possibly ``--bootstrap-from`` a peer), poll
``/healthz`` until it answers, edit the placement, then reconcile its
data.  :class:`Orchestrator` wraps that sequence around one
:class:`~repro.serve.router.RouterIndex`:

* :meth:`wait_healthy` — condition-poll a node's ``/healthz`` (no
  fixed sleeps) until it answers or the deadline passes;
* :meth:`add_node` — wait for the node, admit it into the placement,
  and run a repair sweep so the replica sets it just joined converge
  onto it (a freshly bootstrapped replica that raced live writes picks
  up exactly the tail it missed);
* :meth:`decommission` — drain a node out of the topology;
* :meth:`repair` — one on-demand anti-entropy sweep
  (:meth:`~repro.serve.router.RouterIndex.repair`);
* :meth:`start`/:meth:`stop` — a background daemon thread running the
  sweep every ``repair_interval`` seconds (``cli router
  --repair-interval`` wires this under the serving loop).

The orchestrator holds no state of its own beyond the sweep thread —
placement truth lives in the router, data truth on the nodes — so it
is safe to run one per router process with no coordination service.
"""

from __future__ import annotations

import threading
import time

from repro.serve.placement import parse_endpoint
from repro.serve.remote import (
    NodeFailure,
    RemoteProtocolError,
    ShardNodeClient,
)
from repro.serve.router import RouterIndex

__all__ = ["Orchestrator"]


class Orchestrator:
    """Admission + anti-entropy driver for one router; see the module
    docstring.

    Parameters
    ----------
    router:
        The :class:`~repro.serve.router.RouterIndex` whose topology
        this orchestrator edits and repairs.
    repair_interval:
        Background sweep cadence in seconds; ``0`` disables the loop
        (on-demand :meth:`repair` still works).
    poll_seconds:
        Health-poll spacing inside :meth:`wait_healthy`.
    """

    def __init__(self, router: RouterIndex, *,
                 repair_interval: float = 0.0,
                 poll_seconds: float = 0.05) -> None:
        self.router = router
        self.repair_interval = float(repair_interval)
        self.poll_seconds = float(poll_seconds)
        self.sweeps = 0
        self.sweep_errors = 0
        self.last_report: dict | None = None
        self.last_error: str | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # --------------------------- admission -------------------------- #

    def wait_healthy(self, address: str, *, timeout: float = 30.0,
                     shard: str | None = None) -> dict:
        """Poll ``address``'s ``/healthz`` until it answers; returns
        the payload.  ``shard`` asserts the node serves the expected
        shard label (placement and deployment must agree *before* the
        node is admitted, not when the router trips over it)."""
        host, port = parse_endpoint(address)
        client = ShardNodeClient(host, port, timeout=max(
            1.0, min(timeout, 10.0)))
        deadline = time.monotonic() + float(timeout)
        try:
            while True:
                try:
                    info = client.healthz()
                except (NodeFailure, RemoteProtocolError) as exc:
                    if time.monotonic() >= deadline:
                        raise TimeoutError(
                            "node %s not healthy after %.1fs: %s"
                            % (address, timeout, exc)) from exc
                    time.sleep(self.poll_seconds)
                    continue
                label = info.get("shard")
                if shard is not None and label is not None \
                        and label != shard:
                    raise ValueError(
                        "node %s identifies as shard %r, expected %r"
                        % (address, label, shard))
                return info
        finally:
            client.close()

    def add_node(self, name: str, address: str, *,
                 timeout: float = 30.0,
                 repair: bool = True) -> list[str]:
        """Wait for ``address`` to serve, admit it as ``name``, and
        (by default) run a repair sweep so the shards it now replicates
        converge onto it.  Returns the shards whose replica sets
        changed."""
        self.wait_healthy(address, timeout=timeout)
        moved = self.router.add_node(name, address)
        if repair and moved:
            self.repair()
        return moved

    def decommission(self, name: str) -> list[str]:
        """Drain ``name`` out of the topology; returns the shards that
        moved off it."""
        return self.router.decommission(name)

    # -------------------------- anti-entropy ------------------------ #

    def repair(self) -> dict:
        """One sweep; see :meth:`RouterIndex.repair`."""
        report = self.router.repair()
        with self._lock:
            self.sweeps += 1
            self.last_report = report
        return report

    def _sweep_loop(self) -> None:
        while not self._stop.wait(self.repair_interval):
            try:
                self.repair()
            except Exception as exc:  # noqa: BLE001 — the sweep is
                # best-effort background hygiene; a transient cluster
                # error must not kill the loop (the next tick retries).
                with self._lock:
                    self.sweep_errors += 1
                    self.last_error = "%s: %s" % (type(exc).__name__,
                                                  exc)

    def start(self) -> None:
        """Start the background sweep loop (``repair_interval > 0``)."""
        if self.repair_interval <= 0:
            raise ValueError("repair_interval must be > 0 to start "
                             "the sweep loop")
        if self._thread is not None:
            raise RuntimeError("sweep loop already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sweep_loop,
            name="lshensemble-repair", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "Orchestrator":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # --------------------------- inspection ------------------------- #

    def status(self) -> dict:
        """A point-in-time cluster summary: per-shard replica health
        (address, epoch, key count) plus sweep counters."""
        shards: dict = {}
        for shard, executor in self.router.executors().items():
            if not hasattr(executor, "replica_clients"):
                shards[shard] = {"kind": executor.kind}
                continue
            replicas = {}
            for client in executor.replica_clients():
                try:
                    info = client.healthz()
                except (NodeFailure, RemoteProtocolError) as exc:
                    replicas[client.address] = {
                        "status": "unreachable", "error": str(exc)}
                    continue
                replicas[client.address] = {
                    "status": info.get("status", "ok"),
                    "mutation_epoch": int(
                        info.get("mutation_epoch", 0)),
                    "keys": int(info.get("keys", 0)),
                }
            shards[shard] = {"kind": executor.kind,
                             "replicas": replicas}
        with self._lock:
            return {
                "shards": shards,
                "degraded": self.router.degraded_shards(),
                "placement": (self.router.placement.describe()
                              if self.router.placement is not None
                              else None),
                "repair": {
                    "interval_seconds": self.repair_interval,
                    "sweeps": self.sweeps,
                    "sweep_errors": self.sweep_errors,
                    "last_error": self.last_error,
                },
            }
