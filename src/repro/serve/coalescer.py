"""Micro-batching request coalescer for the asyncio serving layer.

Distributed-LSH serving work (Bahmani et al.; NearBucket-LSH) observes
that the network/serving layer dominates end-to-end latency once the
sketch math is fast; the single biggest in-process lever is turning
*concurrent independent requests* into *one vectorised batch*.  The
coalescer holds each arriving query for at most a configurable window
(or until a batch fills), then dispatches the whole group through the
index's ``query_batch`` / ``query_top_k_batch`` — so served throughput
inherits the batch-path speedups instead of paying the single-query
Python overhead per request.

Queries only batch together when they are *answerable together*:
``query_batch`` shares one threshold (and one signature seed) across a
batch, so every submission carries a ``group_key`` and only same-key
requests coalesce.  Distinct groups flush independently.

Admission control: the coalescer tracks queries waiting plus in
flight; beyond ``max_pending`` new submissions are shed with
:class:`OverloadedError` (the HTTP layer maps it to ``503``) instead of
growing an unbounded queue under overload.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

__all__ = ["MicroBatchCoalescer", "OverloadedError"]


class OverloadedError(RuntimeError):
    """The serving queue is full; the request was shed, not queued."""


class MicroBatchCoalescer:
    """Collect concurrent submissions into per-group batches.

    Parameters
    ----------
    dispatch:
        ``dispatch(group_key, payloads) -> results`` (one result per
        payload, aligned).  Runs on a single worker thread, so batches
        execute sequentially — exactly one index probe at a time.
    max_batch:
        Dispatch a group as soon as it holds this many queries.  ``1``
        disables coalescing (every query dispatches immediately): the
        sequential baseline the serving benchmark compares against.
    window_seconds:
        How long the first query of a batch may wait for company.
    max_pending:
        Bound on queries waiting + in flight; submissions beyond it
        raise :class:`OverloadedError`.
    """

    def __init__(self, dispatch, *, max_batch: int = 64,
                 window_seconds: float = 0.002,
                 max_pending: int = 1024) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._dispatch = dispatch
        self.max_batch = int(max_batch)
        self.window_seconds = float(window_seconds)
        self.max_pending = int(max_pending)
        self._groups: dict = {}  # group_key -> list[(payload, future)]
        # Each group owns its deadline: a group whose first query lands
        # late in another group's window must still get a full
        # ``window_seconds`` of collection time.
        self._timers: dict = {}  # group_key -> asyncio.TimerHandle
        self._tasks: set[asyncio.Task] = set()
        self._pending = 0
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="lshensemble-serve")
        self._closed = False
        # Counters are touched from the event loop only; the stats
        # *reader* may be another thread, hence the snapshot lock-free
        # dict copy in stats() (ints are immutable snapshots).
        self.requests_total = 0
        self.dispatched_total = 0  # requests handed to a batch (at flush)
        self.batches_total = 0  # batches completed
        self.batches_dispatched = 0
        self.shed_total = 0
        self.coalesced_total = 0  # requests that shared their batch
        self.largest_batch = 0
        self.batch_seconds_total = 0.0  # dispatch wall time, completed
        self._batch_size_hist: dict[int, int] = {}

    async def submit(self, group_key, payload):
        """Queue one query; resolves to its result once its batch ran."""
        if self._closed:
            raise RuntimeError("coalescer is closed")
        if self._pending >= self.max_pending:
            self.shed_total += 1
            raise OverloadedError(
                "serving queue full (%d pending)" % self._pending)
        loop = asyncio.get_running_loop()
        self._pending += 1
        self.requests_total += 1
        future = loop.create_future()
        group = self._groups.setdefault(group_key, [])
        group.append((payload, future))
        if len(group) >= self.max_batch or self.window_seconds == 0:
            self._flush_group(group_key)
        elif len(group) == 1:
            self._timers[group_key] = loop.call_later(
                self.window_seconds, self._on_window, group_key)
        return await future

    def _on_window(self, group_key) -> None:
        self._timers.pop(group_key, None)
        self._flush_group(group_key)

    def _flush_group(self, group_key) -> None:
        batch = self._groups.pop(group_key, None)
        timer = self._timers.pop(group_key, None)
        if timer is not None:
            timer.cancel()
        if not batch:
            return
        self.dispatched_total += len(batch)
        self.batches_dispatched += 1
        size = len(batch)
        self._batch_size_hist[size] = self._batch_size_hist.get(size, 0) + 1
        task = asyncio.get_running_loop().create_task(
            self._run(group_key, batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _flush_all(self) -> None:
        for group_key in list(self._groups):
            self._flush_group(group_key)

    async def _run(self, group_key, batch) -> None:
        payloads = [payload for payload, _ in batch]
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            results = await loop.run_in_executor(
                self._executor, self._dispatch, group_key, payloads)
            if len(results) != len(batch):
                raise RuntimeError(
                    "dispatch returned %d results for %d queries"
                    % (len(results), len(batch)))
        except Exception as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
        else:
            for (_, future), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)
        finally:
            self._pending -= len(batch)
            self.batches_total += 1
            self.batch_seconds_total += loop.time() - started
            if len(batch) > 1:
                self.coalesced_total += len(batch)
            if len(batch) > self.largest_batch:
                self.largest_batch = len(batch)

    async def aclose(self) -> None:
        """Flush whatever is queued, wait it out, stop the worker."""
        self._closed = True
        self._flush_all()
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
        self._executor.shutdown(wait=True)

    def stats(self) -> dict:
        # mean_batch_size divides dispatch-time counters: queued /
        # in-flight submissions (counted by requests_total already)
        # must not inflate the batch sizes actually formed.
        dispatched = self.batches_dispatched
        completed = self.batches_total
        return {
            "max_batch": self.max_batch,
            "window_seconds": self.window_seconds,
            "max_pending": self.max_pending,
            "pending": self._pending,
            "requests_total": self.requests_total,
            "dispatched_total": self.dispatched_total,
            "batches_total": completed,
            "batches_dispatched": dispatched,
            "shed_total": self.shed_total,
            "coalesced_total": self.coalesced_total,
            "largest_batch": self.largest_batch,
            "mean_batch_size": (self.dispatched_total / dispatched
                                if dispatched else 0.0),
            "mean_batch_seconds": (self.batch_seconds_total / completed
                                   if completed else 0.0),
            "batch_size_hist": dict(self._batch_size_hist),
        }
