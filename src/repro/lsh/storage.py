"""Bucket storage for LSH indexes.

LSH maps a band of a signature to a bucket key and appends the domain key to
that bucket.  The paper's deployment spreads buckets over a cluster; here
storage is a small abstraction so the index code never touches a concrete
dict directly — swapping in a different backend (shared memory, disk) only
requires implementing :class:`HashTableStorage`.

Batched probes dispatch through the kernel registry
(:mod:`repro.kernels`): a vectorised kernel answers ``merge_packed``
with one hash pass and one binary search over the whole batch, while the
``python`` reference kernel keeps the plain dict loop.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence

import numpy as np

from repro.kernels import SortedHashes, get_kernel, lanes_from_bytes
from repro.kernels import fnv1a_lanes  # noqa: F401 — back-compat re-export

__all__ = ["HashTableStorage", "DictHashTableStorage", "BandedStorage",
           "fnv1a_lanes", "register_storage_backend",
           "resolve_storage_backend", "storage_backend_name",
           "list_storage_backends"]

# Tables smaller than this answer packed probes with plain dict lookups;
# building the sorted hash index only pays off once it is amortised over
# enough buckets.  Likewise for batches with fewer probes than
# _MIN_VECTOR_PROBES, where numpy call overhead exceeds the dict loop.
_MIN_VECTOR_KEYS = 64
_MIN_VECTOR_PROBES = 32


class HashTableStorage:
    """Interface: a multimap from bucket key to a set of domain keys."""

    def insert(self, bucket_key: Hashable, key: Hashable) -> None:
        raise NotImplementedError

    def get(self, bucket_key: Hashable) -> frozenset:
        raise NotImplementedError

    def get_view(self, bucket_key: Hashable):
        """Read-only view of a bucket for the query hot path.

        Unlike :meth:`get`, the returned collection may alias internal
        state and MUST NOT be mutated or retained across mutations of the
        storage; it exists to avoid one copy per bucket probe.
        """
        raise NotImplementedError

    def get_many(self, bucket_keys: Sequence[Hashable]) -> list:
        """Views of many buckets in one call (the batch query hot path).

        Same aliasing contract as :meth:`get_view`.  Backends with probe
        setup cost (disk, network) should override this to amortise it
        over the whole batch; the default simply loops.
        """
        return [self.get_view(k) for k in bucket_keys]

    def merge_packed(self, buf: bytes, stride: int, results: Sequence[set],
                     rows: Sequence[int]) -> None:
        """Union packed-key buckets directly into the caller's result sets.

        ``buf`` is the concatenation of ``len(rows)`` bucket keys of
        ``stride`` bytes each — one ``ndarray.tobytes`` call over a band
        slice of a signature matrix (the vectorised byte-packing the
        batch query path is built on).  The bucket of the ``i``-th key is
        unioned into ``results[rows[i]]``.  This fuses key slicing, the
        bucket lookup, and the merge into one loop per band — the
        innermost loop of the batch query path.
        """
        for j, off in zip(rows, range(0, len(buf), stride)):
            bucket = self.get_view(buf[off:off + stride])
            if bucket:
                results[j] |= bucket

    def insert_packed(self, buf: bytes, stride: int,
                      keys: Sequence[Hashable]) -> None:
        """Bulk-insert packed bucket keys: the write-side twin of
        :meth:`merge_packed`.

        ``buf`` concatenates ``len(keys)`` bucket keys of ``stride``
        bytes each (one ``ndarray.tobytes`` pass over a band slice of a
        signature matrix); ``keys[i]`` is filed under
        ``buf[i * stride : (i + 1) * stride]``.  Backends with per-call
        overhead (disk, network) should override this to amortise it
        over the whole batch; the default simply loops over
        :meth:`insert`.
        """
        for key, off in zip(keys, range(0, len(buf), stride)):
            self.insert(buf[off:off + stride], key)

    def remove(self, bucket_key: Hashable, key: Hashable) -> None:
        raise NotImplementedError

    def set_kernel(self, kernel) -> None:
        """Adopt ``kernel`` (a :class:`repro.kernels.Kernel`) for packed
        probe dispatch.  The default is a no-op: backends without a
        vectorised path simply ignore the hint."""

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> Iterator[Hashable]:
        raise NotImplementedError


class DictHashTableStorage(HashTableStorage):
    """In-memory dict-of-sets storage — the default backend.

    Batched probes (:meth:`merge_packed`) are answered through a lazily
    built sorted-key index: all bucket keys packed into one numpy void
    array, binary-searched for the whole batch in a single
    ``np.searchsorted`` call, so only *hits* are touched by Python code.
    The index is invalidated by any bucket-key mutation and rebuilt on
    the next batch probe.
    """

    __slots__ = ("_table", "_packed", "_kernel")

    def __init__(self) -> None:
        self._table: dict[Hashable, set] = {}
        # (stride, sorted_hash_index) or (stride, None) when keys are
        # not uniform `stride`-byte strings.
        self._packed: tuple[int, object | None] | None = None
        # Kernel adopted from the owning index (None: resolve the
        # process default lazily at probe time).
        self._kernel = None

    def set_kernel(self, kernel) -> None:
        self._kernel = kernel

    def insert(self, bucket_key: Hashable, key: Hashable) -> None:
        bucket = self._table.get(bucket_key)
        if bucket is None:
            self._table[bucket_key] = {key}
            self._packed = None  # new bucket key: probe index is stale
        else:
            bucket.add(key)

    def get(self, bucket_key: Hashable) -> frozenset:
        bucket = self._table.get(bucket_key)
        return frozenset(bucket) if bucket else frozenset()

    _EMPTY: frozenset = frozenset()

    def get_view(self, bucket_key: Hashable):
        return self._table.get(bucket_key) or DictHashTableStorage._EMPTY

    def get_many(self, bucket_keys: Sequence[Hashable]) -> list:
        get = self._table.get
        empty = DictHashTableStorage._EMPTY
        return [get(k) or empty for k in bucket_keys]

    def merge_packed(self, buf: bytes, stride: int, results: Sequence[set],
                     rows: Sequence[int]) -> None:
        kernel = self._kernel or get_kernel(None)
        n = len(buf) // stride if stride else 0
        index = (self._packed_index(stride, kernel)
                 if kernel.vectorized and n >= _MIN_VECTOR_PROBES
                 else None)
        if index is None:
            # The reference path (and the `python` kernel's only path):
            # one slice + dict lookup + set union per probe.
            get = self._table.get
            for j, off in zip(rows, range(0, len(buf), stride)):
                bucket = get(buf[off:off + stride])
                if bucket:
                    results[j] |= bucket
            return
        # Vectorised prefilter: hash every probe key, probe the stored-key
        # hash index, and fall through to real dict lookups only for rows
        # whose hash matched (hash collisions are filtered by the lookup
        # itself, so results stay exact).
        probes = kernel.band_hash(lanes_from_bytes(buf, n, stride))
        _, hits = kernel.probe_hits(index, probes)
        get = self._table.get
        for i in hits.tolist():
            off = i * stride
            bucket = get(buf[off:off + stride])
            if bucket:
                results[rows[i]] |= bucket

    def _packed_index(self, stride: int, kernel):
        """Sorted hashes of all ``stride``-byte bucket keys, or None.

        None means "use dict lookups": the table is small, or its keys
        are not uniform ``stride``-length byte strings (generic keys are
        allowed by the interface; only the packed-bytes layout used by
        the LSH band tables vectorises).  b-bit packed keys (stride not
        a multiple of 8) are hashed through their widened byte lanes —
        see :func:`repro.kernels.lanes_from_bytes`.
        """
        cached = self._packed
        if cached is not None and cached[0] == stride:
            return cached[1]
        table = self._table
        if len(table) < _MIN_VECTOR_KEYS:
            return None
        keys = table.keys()
        if not all(isinstance(k, bytes) and len(k) == stride for k in keys):
            self._packed = (stride, None)
            return None
        lanes = lanes_from_bytes(b"".join(keys), len(table), stride)
        index = SortedHashes(np.sort(kernel.band_hash(lanes)))
        self._packed = (stride, index)
        return index

    def insert_packed(self, buf: bytes, stride: int,
                      keys: Sequence[Hashable]) -> None:
        # The bulk-build hot loop: same effect as the base-class loop
        # over insert(), but with the dict access inlined so each
        # (bucket key, member) pair costs one slice, one lookup, and one
        # set update.
        table = self._table
        off = 0
        for key in keys:
            bucket_key = buf[off:off + stride]
            bucket = table.get(bucket_key)
            if bucket is None:
                table[bucket_key] = {key}
            else:
                bucket.add(key)
            off += stride
        self._packed = None  # new bucket keys: probe index is stale

    def remove(self, bucket_key: Hashable, key: Hashable) -> None:
        bucket = self._table.get(bucket_key)
        if bucket is None:
            return
        bucket.discard(key)
        if not bucket:
            del self._table[bucket_key]
            self._packed = None  # bucket key disappeared: index is stale

    def __len__(self) -> int:
        return len(self._table)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._table)

    def bucket_sizes(self) -> list[int]:
        """Sizes of all buckets (diagnostics: collision profile)."""
        return [len(b) for b in self._table.values()]


# --------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------- #
#
# Persistence records *which* bucket backend an index was built with so a
# loaded index is faithful to the saved one (a dict-backed index must not
# silently come back disk-backed, or vice versa).  Factories register
# under a short stable name; the name goes into the snapshot header and
# is resolved back to the factory on load.

_STORAGE_BACKENDS: dict[str, object] = {}


def register_storage_backend(name: str, factory) -> None:
    """Register ``factory`` (a zero-argument callable returning a
    :class:`HashTableStorage`) under ``name`` for persistence.

    Re-registering a name with a different factory raises — snapshot
    headers reference backends by name, so names must stay unambiguous
    within a process.
    """
    existing = _STORAGE_BACKENDS.get(name)
    if existing is not None and existing is not factory:
        raise ValueError(
            "storage backend name %r is already registered" % name
        )
    _STORAGE_BACKENDS[name] = factory


def resolve_storage_backend(name: str):
    """The factory registered under ``name`` (KeyError when unknown)."""
    try:
        return _STORAGE_BACKENDS[name]
    except KeyError:
        raise KeyError(
            "unknown storage backend %r; registered backends: %s"
            % (name, sorted(_STORAGE_BACKENDS))
        ) from None


def storage_backend_name(factory) -> str | None:
    """The registered name of ``factory``, or None when unregistered."""
    for name, registered in _STORAGE_BACKENDS.items():
        if registered is factory:
            return name
    return None


def list_storage_backends() -> list[str]:
    """Names of all registered storage backends, sorted."""
    return sorted(_STORAGE_BACKENDS)


register_storage_backend("dict", DictHashTableStorage)


class BandedStorage:
    """One hash table per LSH band, b tables total."""

    __slots__ = ("tables",)

    def __init__(self, num_bands: int,
                 storage_factory=DictHashTableStorage,
                 kernel=None) -> None:
        if num_bands <= 0:
            raise ValueError("num_bands must be positive")
        self.tables = [storage_factory() for _ in range(num_bands)]
        if kernel is not None:
            for table in self.tables:
                table.set_kernel(kernel)

    def __len__(self) -> int:
        return len(self.tables)

    def insert(self, band_index: int, bucket_key: Hashable,
               key: Hashable) -> None:
        self.tables[band_index].insert(bucket_key, key)

    def get(self, band_index: int, bucket_key: Hashable) -> frozenset:
        return self.tables[band_index].get(bucket_key)

    def get_many(self, band_index: int,
                 bucket_keys: Sequence[Hashable]) -> list:
        """Batched probe of one band's table; see
        :meth:`HashTableStorage.get_many`."""
        return self.tables[band_index].get_many(bucket_keys)

    def merge_packed(self, band_index: int, buf: bytes, stride: int,
                     results: Sequence[set], rows: Sequence[int]) -> None:
        """Fused packed probe of one band's table; see
        :meth:`HashTableStorage.merge_packed`."""
        self.tables[band_index].merge_packed(buf, stride, results, rows)

    def remove(self, band_index: int, bucket_key: Hashable,
               key: Hashable) -> None:
        self.tables[band_index].remove(bucket_key, key)
