"""Bucket storage for LSH indexes.

LSH maps a band of a signature to a bucket key and appends the domain key to
that bucket.  The paper's deployment spreads buckets over a cluster; here
storage is a small abstraction so the index code never touches a concrete
dict directly — swapping in a different backend (shared memory, disk) only
requires implementing :class:`HashTableStorage`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

__all__ = ["HashTableStorage", "DictHashTableStorage", "BandedStorage"]


class HashTableStorage:
    """Interface: a multimap from bucket key to a set of domain keys."""

    def insert(self, bucket_key: Hashable, key: Hashable) -> None:
        raise NotImplementedError

    def get(self, bucket_key: Hashable) -> frozenset:
        raise NotImplementedError

    def get_view(self, bucket_key: Hashable):
        """Read-only view of a bucket for the query hot path.

        Unlike :meth:`get`, the returned collection may alias internal
        state and MUST NOT be mutated or retained across mutations of the
        storage; it exists to avoid one copy per bucket probe.
        """
        raise NotImplementedError

    def remove(self, bucket_key: Hashable, key: Hashable) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> Iterator[Hashable]:
        raise NotImplementedError


class DictHashTableStorage(HashTableStorage):
    """In-memory dict-of-sets storage — the default backend."""

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: dict[Hashable, set] = {}

    def insert(self, bucket_key: Hashable, key: Hashable) -> None:
        bucket = self._table.get(bucket_key)
        if bucket is None:
            self._table[bucket_key] = {key}
        else:
            bucket.add(key)

    def get(self, bucket_key: Hashable) -> frozenset:
        bucket = self._table.get(bucket_key)
        return frozenset(bucket) if bucket else frozenset()

    _EMPTY: frozenset = frozenset()

    def get_view(self, bucket_key: Hashable):
        return self._table.get(bucket_key) or DictHashTableStorage._EMPTY

    def remove(self, bucket_key: Hashable, key: Hashable) -> None:
        bucket = self._table.get(bucket_key)
        if bucket is None:
            return
        bucket.discard(key)
        if not bucket:
            del self._table[bucket_key]

    def __len__(self) -> int:
        return len(self._table)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._table)

    def bucket_sizes(self) -> list[int]:
        """Sizes of all buckets (diagnostics: collision profile)."""
        return [len(b) for b in self._table.values()]


class BandedStorage:
    """One hash table per LSH band, b tables total."""

    __slots__ = ("tables",)

    def __init__(self, num_bands: int,
                 storage_factory=DictHashTableStorage) -> None:
        if num_bands <= 0:
            raise ValueError("num_bands must be positive")
        self.tables = [storage_factory() for _ in range(num_bands)]

    def __len__(self) -> int:
        return len(self.tables)

    def insert(self, band_index: int, bucket_key: Hashable,
               key: Hashable) -> None:
        self.tables[band_index].insert(bucket_key, key)

    def get(self, band_index: int, bucket_key: Hashable) -> frozenset:
        return self.tables[band_index].get(bucket_key)

    def remove(self, band_index: int, bucket_key: Hashable,
               key: Hashable) -> None:
        self.tables[band_index].remove(bucket_key, key)
