"""Classic MinHash LSH: static-threshold banding index plus its tuner."""

from repro.lsh.lsh import MinHashLSH
from repro.lsh.params import (
    candidate_probability,
    false_negative_weight,
    false_positive_weight,
    optimal_params,
    threshold_for_params,
)
from repro.lsh.storage import (
    BandedStorage,
    DictHashTableStorage,
    HashTableStorage,
    list_storage_backends,
    register_storage_backend,
    resolve_storage_backend,
    storage_backend_name,
)

__all__ = [
    "MinHashLSH",
    "optimal_params",
    "candidate_probability",
    "false_positive_weight",
    "false_negative_weight",
    "threshold_for_params",
    "HashTableStorage",
    "DictHashTableStorage",
    "BandedStorage",
    "register_storage_backend",
    "resolve_storage_backend",
    "storage_backend_name",
    "list_storage_backends",
]
