"""Classic MinHash LSH (Indyk & Motwani 1998, Section 3.2 of the paper).

The index splits each ``m``-value signature into ``b`` bands of ``r`` rows.
Two domains land in the same bucket of band ``i`` exactly when their
signatures agree on all ``r`` rows of that band, which happens with
probability ``s^r``; over ``b`` bands the candidate probability is
``1 - (1 - s^r)^b`` (Eq. 5).

This class is both a substrate (LSH Ensemble builds per-partition dynamic
variants on the same banding idea) and the paper's *Baseline* when wrapped
with the containment-threshold conversion of Section 5.1.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.kernels import band_dtype, get_kernel, pack_block, pack_row, \
    validate_bbit
from repro.lsh.params import optimal_params
from repro.lsh.storage import BandedStorage, DictHashTableStorage
from repro.minhash.batch import as_signature_matrix, prepare_bulk_insert
from repro.minhash.lean import LeanMinHash
from repro.minhash.minhash import MinHash

__all__ = ["MinHashLSH"]


def _as_lean(signature: MinHash | LeanMinHash) -> LeanMinHash:
    if isinstance(signature, LeanMinHash):
        return signature
    if isinstance(signature, MinHash):
        return LeanMinHash(signature)
    raise TypeError(
        "expected MinHash or LeanMinHash, got %r" % type(signature).__name__
    )


class MinHashLSH:
    """A static-threshold MinHash LSH index.

    Parameters
    ----------
    threshold:
        Jaccard similarity threshold ``s*`` the index is tuned for.
    num_perm:
        Signature length; inserted/queried signatures must match.
    params:
        Optional explicit ``(b, r)``; overrides threshold-based tuning.
    fp_weight, fn_weight:
        Penalty weights handed to the tuner (ignored when ``params`` given).
    storage_factory:
        Bucket backend constructor, by default in-memory dicts.
    kernel:
        Hot-loop backend name or instance (see :mod:`repro.kernels`);
        defaults to the process selection (``REPRO_KERNEL``, then
        ``numpy``).
    bbit:
        b-bit band-key packing (None / 8 / 16); narrower bucket keys
        trade extra candidate collisions for memory bandwidth.
    """

    def __init__(self, threshold: float = 0.9, num_perm: int = 256,
                 params: tuple[int, int] | None = None,
                 fp_weight: float = 0.5, fn_weight: float = 0.5,
                 storage_factory=DictHashTableStorage,
                 kernel=None, bbit=None) -> None:
        if num_perm < 2:
            raise ValueError("num_perm must be at least 2")
        self.num_perm = int(num_perm)
        self.threshold = float(threshold)
        if params is not None:
            b, r = params
            if b * r > num_perm:
                raise ValueError(
                    "b * r = %d exceeds num_perm = %d" % (b * r, num_perm)
                )
        else:
            b, r = optimal_params(self.threshold, self.num_perm,
                                  fp_weight, fn_weight)
        self.b = int(b)
        self.r = int(r)
        self._kernel = get_kernel(kernel)
        self.bbit = validate_bbit(bbit)
        self._band_dtype = band_dtype(self.bbit)
        self._storage = BandedStorage(self.b, storage_factory,
                                      kernel=self._kernel)
        self._keys: dict[Hashable, LeanMinHash] = {}

    @property
    def kernel(self):
        """The resolved hot-loop kernel backend."""
        return self._kernel

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, key: Hashable, signature: MinHash | LeanMinHash) -> None:
        """Index ``signature`` under ``key``.

        Keys are unique; re-inserting an existing key raises ``ValueError``
        (remove first), matching the append-only build the paper assumes.
        """
        lean = _as_lean(signature)
        if lean.num_perm != self.num_perm:
            raise ValueError(
                "signature num_perm %d does not match index num_perm %d"
                % (lean.num_perm, self.num_perm)
            )
        if key in self._keys:
            raise ValueError("key %r is already in the index" % (key,))
        self._keys[key] = lean
        for i in range(self.b):
            band = pack_row(lean.hashvalues, i * self.r, (i + 1) * self.r,
                            self._band_dtype)
            self._storage.insert(i, band, key)

    def insert_batch(self, keys: Sequence[Hashable], batch,
                     seeds=None) -> None:
        """Index many signatures in one vectorised pass.

        Equivalent to ``for key, sig in zip(keys, batch): insert(key,
        sig)``: per band, the bucket keys of the whole block are packed
        with one ``tobytes`` pass and filed through the storage
        backend's bulk
        :meth:`~repro.lsh.storage.HashTableStorage.insert_packed` path.
        ``seeds`` is a scalar or per-row sequence, defaulting to the
        batch's seed for a :class:`SignatureBatch` and to 1 otherwise.
        When the matrix is read-only the stored signatures alias its
        rows instead of copying them.
        """
        keys, matrix, signatures = prepare_bulk_insert(
            keys, batch, seeds, self.num_perm, self._keys, "index")
        if not keys:
            return
        self._keys.update(zip(keys, signatures))
        stride = self.r * self._band_dtype.itemsize
        for i in range(self.b):
            buf = pack_block(matrix, i * self.r, (i + 1) * self.r,
                             self._band_dtype)
            self._storage.tables[i].insert_packed(buf, stride, keys)

    def remove(self, key: Hashable) -> None:
        """Remove a key and all its bucket entries."""
        lean = self._keys.pop(key, None)
        if lean is None:
            raise KeyError(key)
        for i in range(self.b):
            band = pack_row(lean.hashvalues, i * self.r, (i + 1) * self.r,
                            self._band_dtype)
            self._storage.remove(i, band, key)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, signature: MinHash | LeanMinHash) -> set:
        """Keys whose signatures collide with the query in >= 1 band."""
        lean = _as_lean(signature)
        if lean.num_perm != self.num_perm:
            raise ValueError(
                "signature num_perm %d does not match index num_perm %d"
                % (lean.num_perm, self.num_perm)
            )
        out: set = set()
        for i in range(self.b):
            band = pack_row(lean.hashvalues, i * self.r, (i + 1) * self.r,
                            self._band_dtype)
            out |= self._storage.tables[i].get_view(band)
        return out

    def query_batch(self, batch) -> list[set]:
        """:meth:`query` for many signatures at once, band by band.

        ``batch`` is a :class:`~repro.minhash.batch.SignatureBatch`, an
        ``(n, num_perm)`` matrix, or a sequence of signatures.  Returns
        one result set per row, in order — exactly
        ``[self.query(s) for s in batch]``, but all bucket keys of a band
        are packed with one ``tobytes`` pass and probed against that
        band's table in one fused storage call (which vectorises large
        probes behind a sorted-hash prefilter).
        """
        matrix = as_signature_matrix(batch, self.num_perm)
        n = matrix.shape[0]
        if n == 0:
            return []
        results: list[set] = [set() for _ in range(n)]
        rows = range(n)
        stride = self.r * self._band_dtype.itemsize
        for i in range(self.b):
            buf = pack_block(matrix, i * self.r, (i + 1) * self.r,
                             self._band_dtype)
            self._storage.merge_packed(i, buf, stride, results, rows)
        return results

    def get_signature(self, key: Hashable) -> LeanMinHash:
        """The stored signature for ``key`` (KeyError when absent)."""
        return self._keys[key]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __contains__(self, key: Hashable) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def is_empty(self) -> bool:
        return not self._keys

    def __repr__(self) -> str:
        return ("MinHashLSH(threshold=%.3f, num_perm=%d, b=%d, r=%d, keys=%d)"
                % (self.threshold, self.num_perm, self.b, self.r,
                   len(self._keys)))
