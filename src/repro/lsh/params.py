"""Static LSH parameter selection for a Jaccard similarity threshold.

A banding scheme with ``b`` bands of ``r`` rows turns Jaccard similarity
``s`` into a candidate probability ``P(s) = 1 - (1 - s^r)^b`` (Eq. 5).
Given a similarity threshold ``s*``, the classic tuning picks ``(b, r)``
with ``b * r <= m`` minimising a weighted sum of

* the false-positive mass ``∫_0^{s*} P(s) ds`` and
* the false-negative mass ``∫_{s*}^1 (1 - P(s)) ds``.

This is the *static* tuner used by the plain MinHash LSH baseline; LSH
Ensemble replaces it with the containment-aware dynamic tuner in
:mod:`repro.core.tuning`.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

_trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 1.x fallback

__all__ = [
    "candidate_probability",
    "false_positive_weight",
    "false_negative_weight",
    "optimal_params",
    "threshold_for_params",
]

_INTEGRATION_POINTS = 256


def candidate_probability(s, b: int, r: int):
    """``P(s | b, r) = 1 - (1 - s^r)^b`` — Eq. 5.  Vectorised over ``s``."""
    s = np.asarray(s, dtype=np.float64)
    return 1.0 - np.power(1.0 - np.power(s, r), b)


def false_positive_weight(threshold: float, b: int, r: int) -> float:
    """Probability mass of candidates below the similarity threshold."""
    xs = np.linspace(0.0, threshold, _INTEGRATION_POINTS)
    return float(_trapezoid(candidate_probability(xs, b, r), xs))


def false_negative_weight(threshold: float, b: int, r: int) -> float:
    """Probability mass of non-candidates above the similarity threshold."""
    xs = np.linspace(threshold, 1.0, _INTEGRATION_POINTS)
    return float(_trapezoid(1.0 - candidate_probability(xs, b, r), xs))


@lru_cache(maxsize=4096)
def optimal_params(threshold: float, num_perm: int,
                   fp_weight: float = 0.5,
                   fn_weight: float = 0.5) -> tuple[int, int]:
    """The ``(b, r)`` pair minimising weighted FP+FN mass for ``threshold``.

    Parameters
    ----------
    threshold:
        Target Jaccard similarity threshold ``s*`` in ``[0, 1]``.
    num_perm:
        Number of minwise hash functions ``m``; the search covers every
        integer pair with ``b * r <= m``.
    fp_weight, fn_weight:
        Relative penalties; they must sum to a positive value.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1], got %r" % threshold)
    if num_perm < 2:
        raise ValueError("num_perm must be at least 2")
    if fp_weight < 0 or fn_weight < 0 or fp_weight + fn_weight == 0:
        raise ValueError("weights must be non-negative and not both zero")
    best = None
    best_error = float("inf")
    for b in range(1, num_perm + 1):
        max_r = num_perm // b
        for r in range(1, max_r + 1):
            error = (fp_weight * false_positive_weight(threshold, b, r)
                     + fn_weight * false_negative_weight(threshold, b, r))
            if error < best_error:
                best_error = error
                best = (b, r)
    assert best is not None
    return best


def threshold_for_params(b: int, r: int) -> float:
    """Approximate inherent threshold of a ``(b, r)`` scheme: ``(1/b)^(1/r)``.

    This is Eq. 21 — the similarity at which the candidate probability
    curve has its steepest rise.
    """
    if b <= 0 or r <= 0:
        raise ValueError("b and r must be positive")
    return float((1.0 / b) ** (1.0 / r))
