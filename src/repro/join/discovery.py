"""Joinable-table discovery — the paper's Section 1.1 workflow, packaged.

The motivating application of domain search is finding tables that *join*
with a given table on a chosen attribute.  :class:`JoinDiscovery` wires
the pieces into that workflow: index every ``(table, attribute)`` domain
of a corpus once, then answer "what joins with ``T.a``?" and "what are
all joinable pairs?" with optional exact verification.

This is a thin, opinionated layer — all the heavy lifting lives in
:class:`~repro.core.ensemble.LSHEnsemble` — but it is the API a data
scientist actually wants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ensemble import LSHEnsemble
from repro.core.estimation import estimate_containment
from repro.datagen.tables import TableCorpus
from repro.minhash.generator import SignatureFactory

__all__ = ["JoinCandidate", "JoinDiscovery"]


@dataclass(frozen=True)
class JoinCandidate:
    """One discovered join edge: query attribute -> candidate attribute."""

    table: str
    attribute: str
    estimated_containment: float
    exact_containment: float | None = None

    @property
    def verified(self) -> bool:
        return self.exact_containment is not None

    def __repr__(self) -> str:
        score = ("t=%.3f" % self.exact_containment if self.verified
                 else "~t=%.3f" % self.estimated_containment)
        return "JoinCandidate(%s.%s, %s)" % (self.table, self.attribute,
                                             score)


class JoinDiscovery:
    """Index a table corpus once; discover join partners on demand.

    Parameters
    ----------
    corpus:
        The :class:`~repro.datagen.tables.TableCorpus` to index.  Any
        object with the same ``domains`` mapping shape works.
    threshold:
        Default containment threshold for discovery.
    num_perm, num_partitions:
        Passed through to the underlying :class:`LSHEnsemble`.
    """

    def __init__(self, corpus: TableCorpus, threshold: float = 0.7,
                 num_perm: int = 256, num_partitions: int = 16) -> None:
        self.corpus = corpus
        self.threshold = float(threshold)
        self._domains = corpus.domains
        self._factory = SignatureFactory(num_perm=num_perm)
        self._signatures = {
            key: self._factory.lean(values)
            for key, values in self._domains.items()
        }
        self._index = LSHEnsemble(threshold=threshold, num_perm=num_perm,
                                  num_partitions=num_partitions)
        self._index.index(
            (key, self._signatures[key], len(self._domains[key]))
            for key in self._domains
        )

    # ------------------------------------------------------------------ #
    # Discovery
    # ------------------------------------------------------------------ #

    def joinable_with(self, table: str, attribute: str,
                      threshold: float | None = None,
                      verify: bool = True) -> list[JoinCandidate]:
        """Attributes (of *other* tables) likely containing ``>= t*`` of
        ``table.attribute``, best first.

        With ``verify=True`` (default) each candidate's containment is
        computed exactly from the stored value sets and candidates below
        the threshold are dropped; with ``verify=False`` the raw index
        candidates are returned with signature-estimated scores.
        """
        t_star = self.threshold if threshold is None else float(threshold)
        query_key = (table, attribute)
        if query_key not in self._domains:
            raise KeyError("unknown attribute %s.%s" % (table, attribute))
        query_values = self._domains[query_key]
        query_sig = self._signatures[query_key]
        found = self._index.query(query_sig, size=len(query_values),
                                  threshold=t_star)
        candidates: list[JoinCandidate] = []
        for key in found:
            cand_table, cand_attr = key
            if cand_table == table:
                continue  # self-joins are rarely what the user wants
            estimated = estimate_containment(
                query_sig, self._signatures[key],
                query_size=len(query_values),
                candidate_size=len(self._domains[key]),
            )
            if verify:
                exact = (len(query_values & self._domains[key])
                         / len(query_values))
                if exact < t_star:
                    continue
                candidates.append(JoinCandidate(cand_table, cand_attr,
                                                estimated, exact))
            else:
                candidates.append(JoinCandidate(cand_table, cand_attr,
                                                estimated))
        candidates.sort(
            key=lambda c: (-(c.exact_containment
                             if c.exact_containment is not None
                             else c.estimated_containment),
                           c.table, c.attribute)
        )
        return candidates

    def all_joinable_pairs(self, threshold: float | None = None,
                           min_domain_size: int = 2,
                           ) -> list[tuple[tuple, tuple, float]]:
        """Every verified cross-table joinable pair in the corpus.

        Returns ``((table_a, attr_a), (table_b, attr_b), containment)``
        triples with containment of *a in b* at or above the threshold,
        deduplicated so each directed edge appears once; sorted by score.
        Quadratic work is avoided by routing every probe through the
        index first.
        """
        t_star = self.threshold if threshold is None else float(threshold)
        edges = []
        for key, values in self._domains.items():
            if len(values) < min_domain_size:
                continue
            for cand in self.joinable_with(key[0], key[1],
                                           threshold=t_star, verify=True):
                edges.append(
                    (key, (cand.table, cand.attribute),
                     cand.exact_containment)
                )
        edges.sort(key=lambda e: (-e[2], str(e[0]), str(e[1])))
        return edges

    def __len__(self) -> int:
        """Number of indexed attribute domains."""
        return len(self._index)
