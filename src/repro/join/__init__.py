"""Joinable-table discovery on top of LSH Ensemble (the paper's use case)."""

from repro.join.discovery import JoinCandidate, JoinDiscovery

__all__ = ["JoinDiscovery", "JoinCandidate"]
