"""LSH Ensemble: Internet-Scale Domain Search — full reproduction.

Reproduces Zhu, Nargesian, Pu & Miller, *LSH Ensemble: Internet-Scale
Domain Search*, PVLDB 9(12), 2016.  The package implements the paper's
index (:class:`~repro.core.ensemble.LSHEnsemble`) and every substrate it
rests on: minwise hashing, classic and dynamic (forest) LSH, the
Asymmetric Minwise Hashing baseline, exact ground-truth search, synthetic
open-data corpora, and the evaluation harness regenerating each figure
and table of the paper.

Quickstart::

    from repro import LSHEnsemble, MinHash

    index = LSHEnsemble(threshold=0.5, num_partitions=16)
    index.index(
        (name, MinHash.from_values(values), len(values))
        for name, values in domains.items()
    )
    matches = index.query(MinHash.from_values(query), size=len(query))
"""

from repro.asym import AsymmetricMinHashLSH
from repro.core import (
    LSHEnsemble,
    Partition,
    blended_partitions,
    equi_depth_partitions,
    equi_width_partitions,
    estimate_containment,
    optimal_partitions,
    rank_candidates,
)
from repro.exact import InvertedIndex
from repro.forest import MinHashLSHForest, PrefixForest
from repro.join import JoinCandidate, JoinDiscovery
from repro.lsh import MinHashLSH
from repro.minhash import (
    BottomKSketch,
    LeanMinHash,
    MinHash,
    MinHashGenerator,
    SignatureBatch,
    SignatureFactory,
)
from repro.parallel import PooledIndex, ProcPool, ShardedEnsemble
from repro.core.partitioner import register_partitioner
from repro.lsh.storage import register_storage_backend
from repro.persistence import (
    FormatError,
    load_ensemble,
    read_header,
    save_ensemble,
)
from repro.serve import QueryServer, start_in_thread

__version__ = "1.0.0"

__all__ = [
    "LSHEnsemble",
    "MinHash",
    "LeanMinHash",
    "BottomKSketch",
    "SignatureFactory",
    "MinHashGenerator",
    "SignatureBatch",
    "MinHashLSH",
    "PrefixForest",
    "MinHashLSHForest",
    "AsymmetricMinHashLSH",
    "InvertedIndex",
    "ShardedEnsemble",
    "ProcPool",
    "PooledIndex",
    "Partition",
    "equi_depth_partitions",
    "equi_width_partitions",
    "blended_partitions",
    "optimal_partitions",
    "estimate_containment",
    "rank_candidates",
    "save_ensemble",
    "load_ensemble",
    "read_header",
    "FormatError",
    "register_storage_backend",
    "register_partitioner",
    "JoinDiscovery",
    "JoinCandidate",
    "QueryServer",
    "start_in_thread",
    "__version__",
]
