"""Thin shim so `pip install -e .` works on environments without `wheel`.

All metadata lives in pyproject.toml; this file only exists because the
offline build environment lacks the `wheel` package that PEP 660 editable
installs require.
"""

from setuptools import setup

setup()
